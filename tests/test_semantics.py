"""Query-modes subsystem: p-document probabilistic evaluation and
no-but-semantic-match relaxation, proven against brute-force oracles.

The probabilistic engine is checked against possible-worlds enumeration
(``repro.baselines.pworlds``) and the relaxation pipeline against the
exhaustive single-edit oracle (``repro.baselines.relaxation``), on
hypothesis-generated p-documents, across shard counts and both on-disk
codecs.  Strict mode must stay byte-identical to its pre-semantics
behaviour.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (exhaustive_relaxation,
                             possible_worlds_probabilities)
from repro.core.config import EngineConfig, SearchOptions
from repro.core.engine import GKSEngine
from repro.core.export import node_to_dict, response_to_dict
from repro.core.query import Query
from repro.errors import ConfigError, ValidationError
from repro.index.storage import (check_index, describe_layout, load_index,
                                 save_index)
from repro.semantics import (compile_tables, extract_pdoc,
                             probabilistic_search, tables_of)
from repro.testing import KEYWORD_POOL, pdoc_corpus
from repro.xmltree.repository import Repository

pytestmark = pytest.mark.semantics

TOLERANCE = 1e-9


def _repository(documents: list[str]) -> Repository:
    repository = Repository()
    for number, text in enumerate(documents):
        repository.parse(text, name=f"pdoc{number}.xml")
    return repository


def _engine(documents: list[str], shards: int = 1,
            threshold: float = 0.0) -> GKSEngine:
    return GKSEngine(_repository(documents),
                     config=EngineConfig(mode="probabilistic",
                                         threshold=threshold,
                                         shards=shards))


def _probability_map(response) -> dict:
    return {node.dewey: node.probability for node in response.nodes}


def _query(draw) -> Query:
    count = draw(st.integers(min_value=1, max_value=2))
    keywords = draw(st.lists(st.sampled_from(KEYWORD_POOL),
                             min_size=count, max_size=count, unique=True))
    s = draw(st.integers(min_value=1, max_value=count))
    return Query.of(keywords, s=s)


@st.composite
def corpus_and_query(draw):
    documents = draw(pdoc_corpus(max_documents=2, max_uncertain=5))
    return documents, _query(draw)


# ---------------------------------------------------------------------
# probabilistic mode vs the possible-worlds oracle
# ---------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(corpus_and_query(), st.sampled_from([1, 2, 4]))
def test_probabilistic_matches_possible_worlds(case, shards):
    documents, query = case
    engine = _engine(documents, shards=shards)
    oracle = possible_worlds_probabilities(engine.repository, query)
    response = engine.search(query)
    assert response.semantics is not None
    assert response.semantics.mode == "probabilistic"
    produced = _probability_map(response)
    for dewey, probability in produced.items():
        assert probability == pytest.approx(oracle.get(dewey, 0.0),
                                            abs=TOLERANCE)
    for dewey, probability in oracle.items():
        if probability > TOLERANCE:
            assert dewey in produced, (dewey, probability)


@settings(max_examples=15, deadline=None)
@given(corpus_and_query(), st.floats(min_value=0.1, max_value=0.9))
def test_threshold_filters_consistently(case, threshold):
    documents, query = case
    engine = _engine(documents)
    full = _probability_map(engine.search(query))
    cut = _probability_map(engine.search(query, threshold=threshold))
    assert cut == {dewey: probability
                   for dewey, probability in full.items()
                   if probability >= threshold}


@settings(max_examples=15, deadline=None)
@given(case=corpus_and_query(),
       codec=st.sampled_from(["raw", "varint-dag"]),
       shards=st.sampled_from([1, 2]))
def test_probabilistic_survives_persistence(case, codec, shards):
    import tempfile
    from pathlib import Path

    documents, query = case
    engine = _engine(documents, shards=shards)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"index-{codec}-{shards}.idx"
        save_index(engine.index, path, codec=codec)
        loaded = load_index(path)
        assert tables_of(loaded) == tables_of(engine.index)
        direct = probabilistic_search(engine.index, query)
        reloaded = probabilistic_search(loaded, query)
        assert _probability_map(direct) == _probability_map(reloaded)


@settings(max_examples=20, deadline=None)
@given(corpus_and_query())
def test_sharded_equals_monolithic(case):
    documents, query = case
    flat = _probability_map(_engine(documents, shards=1).search(query))
    sharded = _probability_map(_engine(documents, shards=4).search(query))
    assert set(flat) == set(sharded)
    for dewey, probability in flat.items():
        assert sharded[dewey] == pytest.approx(probability, abs=TOLERANCE)


def test_probabilistic_budget_degrades_to_subset():
    from repro.core.budget import SearchBudget

    documents = ['<root><item p:type="IND">'
                 '<name p:p="0.5">apple</name><name>banana</name>'
                 '</item></root>'] * 3
    engine = _engine(documents)
    full = engine.search("apple")
    tight = engine.search("apple",
                          budget=SearchBudget(max_nodes=1))
    assert tight.degraded
    produced = _probability_map(tight)
    reference = _probability_map(full)
    assert set(produced) <= set(reference)
    for dewey, probability in produced.items():
        assert probability == pytest.approx(reference[dewey],
                                            abs=TOLERANCE)


# ---------------------------------------------------------------------
# relaxed mode vs the exhaustive single-edit oracle
# ---------------------------------------------------------------------
@st.composite
def relaxation_case(draw):
    documents = draw(pdoc_corpus(max_documents=2, max_uncertain=0,
                                 keywords=KEYWORD_POOL[:3]))
    count = draw(st.integers(min_value=1, max_value=2))
    keywords = draw(st.lists(
        st.sampled_from(KEYWORD_POOL + ("papaya", "quince")),
        min_size=count, max_size=count, unique=True))
    s = draw(st.integers(min_value=1, max_value=count))
    return documents, Query.of(keywords, s=s)


@settings(max_examples=40, deadline=None)
@given(relaxation_case(), st.sampled_from([1, 2]))
def test_relaxed_matches_exhaustive_oracle(case, shards):
    documents, query = case
    engine = GKSEngine(_repository(documents),
                       config=EngineConfig(shards=shards))
    strict = engine.search(query)
    relaxed = engine.search(query, mode="relaxed")
    assert relaxed.semantics is not None
    assert relaxed.semantics.mode == "relaxed"
    if strict.nodes:
        # non-empty strict answer passes through unrewritten
        assert not relaxed.semantics.relaxed
        assert relaxed.nodes == strict.nodes
        return
    assert relaxed.semantics.relaxed
    oracle = exhaustive_relaxation(engine.repository, query)
    produced = [(node.dewey, node.relaxation.op, node.relaxation.source,
                 node.relaxation.replacement, node.relaxation.penalty,
                 node.score) for node in relaxed.nodes]
    expected = [(hit.dewey, hit.op, hit.source, hit.replacement,
                 hit.penalty, hit.score) for hit in oracle]
    assert produced == expected


def test_relaxed_budget_degrades_to_prefix():
    from repro.core.budget import SearchBudget
    from repro.testing import FakeClock

    documents = ["<root><a>apple</a><b>banana</b><c>cherry</c></root>"]
    engine = GKSEngine(_repository(documents))
    full = engine.search("papaya durian", s=2, mode="relaxed")
    # the fake clock exhausts the deadline partway through the sweep;
    # the relaxed answer must degrade to a prefix of the full merge
    tight = engine.search(
        "papaya durian", s=2, mode="relaxed",
        budget=SearchBudget(deadline_s=0.001,
                            clock=FakeClock(auto_advance=0.0004)))
    assert tight.degraded
    assert tight.degradation.reason == "deadline"
    full_keys = {(node.dewey, node.relaxation.op) for node in full.nodes}
    tight_keys = {(node.dewey, node.relaxation.op) for node in tight.nodes}
    assert tight_keys <= full_keys


# ---------------------------------------------------------------------
# strict mode stays byte-identical
# ---------------------------------------------------------------------
def test_strict_response_carries_no_semantics_keys(figure1_engine):
    response = figure1_engine.search("karen mike", s=2)
    assert response.semantics is None
    payload = response_to_dict(response,
                               repository=figure1_engine.repository)
    assert "semantics" not in payload
    for node, node_payload in zip(response.nodes, payload["nodes"]):
        assert node.probability is None
        assert node.relaxation is None
        assert "probability" not in node_payload
        assert "relaxation" not in node_payload
    stats = response.stats.to_dict()
    assert "mode" not in stats
    assert "relaxed" not in stats
    assert "semantics_candidates" not in stats


def test_strict_index_payload_has_no_tables(tmp_path, figure1_repo):
    strict = GKSEngine(figure1_repo)
    path = tmp_path / "strict.idx"
    save_index(strict.index, path)
    layout = describe_layout(path)
    assert layout["mode"] == "strict"
    assert check_index(path)["mode"] == "strict"


# ---------------------------------------------------------------------
# mode capability and typed errors
# ---------------------------------------------------------------------
def test_probabilistic_query_on_strict_engine_is_config_error(
        figure1_engine):
    with pytest.raises(ConfigError):
        figure1_engine.search("karen", mode="probabilistic")


def test_table_carrying_index_needs_probabilistic_config(tmp_path):
    documents = ['<root><item p:type="IND">'
                 '<name p:p="0.5">apple</name></item></root>']
    path = tmp_path / "prob.idx"
    engine = GKSEngine.open(_repository(documents),
                            config=EngineConfig(mode="probabilistic",
                                                index_path=path))
    engine.search("apple")
    assert path.exists()
    with pytest.raises(ConfigError):
        GKSEngine.open(_repository(documents),
                       config=EngineConfig(index_path=path))
    reopened = GKSEngine.open(
        _repository(documents),
        config=EngineConfig(mode="probabilistic", index_path=path))
    assert tables_of(reopened.index) == tables_of(engine.index)


def test_engine_config_rejects_probabilistic_store():
    with pytest.raises(ConfigError):
        EngineConfig(mode="probabilistic", store_path="/tmp/nope")


def test_search_options_validate_mode_and_threshold():
    with pytest.raises(ConfigError):
        SearchOptions(mode="fuzzy")
    with pytest.raises(ConfigError):
        SearchOptions(threshold=1.5)
    options = SearchOptions.from_mapping(
        {"mode": "probabilistic", "threshold": "0.25"})
    assert options.mode == "probabilistic"
    assert options.threshold == 0.25


# ---------------------------------------------------------------------
# p-document extraction
# ---------------------------------------------------------------------
def test_extract_ind_and_mux_normalisation():
    repository = _repository([
        '<root>'
        '<a p:type="IND"><x p:p="0.5">apple</x><y>banana</y></a>'
        '<b p:type="MUX"><x p:p="0.6">fig</x><y p:p="0.9">durian</y></b>'
        '</root>'])
    tables = compile_tables(repository)
    kinds = {dewey: kind for dewey, kind in tables.kinds.items()}
    assert sorted(kinds.values()) == ["IND", "MUX"]
    mux_parent = next(d for d, kind in kinds.items() if kind == "MUX")
    weights = sorted(tables.edge_p[m]
                     for m in tables.mux_siblings(mux_parent))
    # 0.6 + 0.9 > 1 normalises to 0.4 / 0.6
    assert weights == [pytest.approx(0.4), pytest.approx(0.6)]


def test_extract_rejects_malformed_probability():
    repository = _repository(
        ['<root><a p:type="IND"><x p:p="nope">apple</x></a></root>'])
    with pytest.raises(ValidationError):
        extract_pdoc(repository.documents[0].root)


def test_plain_document_has_empty_tables(figure1_repo):
    assert not compile_tables(figure1_repo)


# ---------------------------------------------------------------------
# serve-layer plumbing and metrics
# ---------------------------------------------------------------------
def test_serve_core_threads_mode_options():
    documents = ['<root><item p:type="IND">'
                 '<name p:p="0.5">apple</name></item></root>']
    engine = _engine(documents)
    with engine.serve(workers=2) as core:
        response = core.search(
            "apple", None,
            options=SearchOptions(mode="probabilistic", threshold=0.4))
        assert response.semantics is not None
        assert {node.probability for node in response.nodes} == {0.5}
        strict = core.search("apple", None,
                             options=SearchOptions(mode="strict"))
        assert strict.semantics is None


def test_semantics_metrics_emitted():
    documents = ['<root><item p:type="IND">'
                 '<name p:p="0.5">apple</name></item></root>']
    engine = _engine(documents)
    engine.search("apple")
    engine.search("papaya", mode="relaxed")
    snapshot = engine.metrics()
    names = {name.split("{")[0] for name in snapshot}
    assert "gks_semantics_searches_total" in names
    assert "gks_semantics_seconds" in names


def test_relaxation_provenance_renders():
    documents = ["<root><a>apple</a></root>"]
    engine = GKSEngine(_repository(documents))
    response = engine.search("papaya apple", s=2, mode="relaxed")
    assert response.nodes
    node = response.nodes[0]
    assert node.relaxation is not None
    assert "papaya" in node.relaxation.describe()
    payload = node_to_dict(node)
    assert payload["relaxation"]["op"] == node.relaxation.op
