#!/usr/bin/env bash
# Query-modes smoke test: exercise the semantics subsystem end-to-end
# through the CLI — probabilistic search over a p-document (tables
# compiled at index time, thresholded results, both codecs), the
# relaxed no-but-semantic-match fallback with provenance, the typed
# mode-compatibility error, and strict-mode byte-identity of the
# persisted payload.
#
# Usage:  bash scripts/smoke_semantics.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/pdoc.xml" <<'XML'
<inventory>
  <item p:type="IND">
    <name p:p="0.5">apple crate</name>
    <name>banana crate</name>
  </item>
  <item p:type="MUX">
    <name p:p="0.6">fig basket</name>
    <name p:p="0.9">durian basket</name>
  </item>
</inventory>
XML
cat > "$WORKDIR/plain.xml" <<'XML'
<library><book><title>apple pie</title><author>banana bob</author></book></library>
XML

echo "== probabilistic search scores by path probability =="
OUT="$(python -m repro search "$WORKDIR/pdoc.xml" -q apple \
       --mode probabilistic --trace)"
echo "$OUT"
grep -q "p=0.5000" <<<"$OUT" || {
    echo "FAIL: probabilistic result missing p=0.5" >&2; exit 1; }
grep -q "mode=probabilistic" <<<"$OUT" || {
    echo "FAIL: --trace did not reflect the mode" >&2; exit 1; }

echo "== threshold drops sub-threshold results =="
OUT="$(python -m repro search "$WORKDIR/pdoc.xml" -q apple \
       --mode probabilistic --threshold 0.7)"
echo "$OUT"
grep -q "^0 node(s)" <<<"$OUT" || {
    echo "FAIL: threshold 0.7 did not drop the p=0.5 results" >&2
    exit 1; }

echo "== MUX weights normalise (0.6/0.9 -> 0.4/0.6) =="
OUT="$(python -m repro search "$WORKDIR/pdoc.xml" -q durian \
       --mode probabilistic)"
echo "$OUT"
grep -q "p=0.6000" <<<"$OUT" || {
    echo "FAIL: MUX weight did not normalise to 0.6" >&2; exit 1; }

echo "== relaxed mode rescues an empty strict answer =="
OUT="$(python -m repro search "$WORKDIR/plain.xml" -q "papaya pie" -s 2 \
       --mode relaxed --trace)"
echo "$OUT"
grep -q "dropped 'papaya'" <<<"$OUT" || {
    echo "FAIL: relaxed result lacks drop provenance" >&2; exit 1; }
grep -q "mode=relaxed" <<<"$OUT" || {
    echo "FAIL: --trace did not reflect relaxed mode" >&2; exit 1; }

echo "== persisted probabilistic index reports its mode (both codecs) =="
python - "$WORKDIR" <<'EOF'
import sys
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.engine import GKSEngine
from repro.index.storage import save_index
from repro.xmltree.repository import Repository

workdir = Path(sys.argv[1])
repository = Repository()
repository.parse((workdir / "pdoc.xml").read_text(), name="pdoc.xml")
engine = GKSEngine(repository, config=EngineConfig(mode="probabilistic"))
save_index(engine.index, workdir / "prob.gks")
save_index(engine.index, workdir / "prob.gksindex", codec="varint-dag")
EOF
for INDEX in "$WORKDIR/prob.gks" "$WORKDIR/prob.gksindex"; do
    OUT="$(python -m repro check-index "$INDEX" --json)"
    echo "$OUT"
    grep -q '"mode": "probabilistic"' <<<"$OUT" || {
        echo "FAIL: check-index --json lacks the probabilistic mode" \
             "for $INDEX" >&2; exit 1; }
done

echo "== strict open of a table-carrying index is a typed error =="
python - "$WORKDIR" <<'EOF'
import sys
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.engine import GKSEngine
from repro.errors import ConfigError
from repro.xmltree.repository import Repository

workdir = Path(sys.argv[1])
repository = Repository()
repository.parse((workdir / "pdoc.xml").read_text(), name="pdoc.xml")
try:
    GKSEngine.open(repository,
                   config=EngineConfig(index_path=workdir / "prob.gks"))
except ConfigError as error:
    print(f"typed refusal: {error}")
else:
    sys.exit("FAIL: strict engine accepted a probabilistic index")
EOF

echo "== strict index payload carries no probability tables =="
OUT="$(python -m repro index "$WORKDIR/plain.xml" -o "$WORKDIR/strict.gks")"
OUT="$(python -m repro check-index "$WORKDIR/strict.gks" --json)"
echo "$OUT"
grep -q '"mode": "strict"' <<<"$OUT" || {
    echo "FAIL: strict index did not report mode strict" >&2; exit 1; }

echo "smoke_semantics OK"
