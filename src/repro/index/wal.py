"""CRC-framed write-ahead log for the durable mutation path.

Every ``add_document`` against a durable engine is appended here —
framed, checksummed and fsynced — *before* it touches the in-memory
index, so a crash at any byte offset loses at most the write that was
still in flight, never an acknowledged one.

Frame format
------------
The file opens with an 8-byte magic (``GKSWAL1\\n``).  Each frame is::

    <u32 payload length> <u64 lsn> <u32 crc32> <payload bytes>

(little-endian header, compact-JSON payload).  The CRC covers the LSN
bytes *and* the payload, so a frame can neither be truncated nor spliced
under a different sequence number without detection.  LSNs are explicit
and strictly consecutive: checkpoint truncation rewrites the log keeping
the surviving frames' numbers, so a frame's identity never depends on
its byte position.

Torn-tail tolerance
-------------------
:func:`replay_wal` reads frames until the first one that is incomplete
or fails its CRC and treats everything from there on as a torn tail —
the expected residue of a crash mid-append.  A torn tail is reported,
not raised; only structural impossibilities (bad magic, non-consecutive
LSNs behind a *valid* CRC) raise :class:`~repro.errors.StorageError`,
because those cannot result from a torn write.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError
from repro.obs.locks import new_lock
from repro.obs.metrics import global_registry
from repro.obs.trace import DEFAULT_CLOCK

WAL_MAGIC = b"GKSWAL1\n"
_FRAME_HEADER = struct.Struct("<IQI")  # payload length, lsn, crc32
_LSN_BYTES = struct.Struct("<Q")


def _frame_crc(lsn: int, payload: bytes) -> int:
    return zlib.crc32(_LSN_BYTES.pack(lsn) + payload) & 0xFFFFFFFF


def _encode_frame(lsn: int, record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    header = _FRAME_HEADER.pack(len(payload), lsn, _frame_crc(lsn, payload))
    return header + payload


def fsync_directory(directory: str | Path) -> None:
    """Flush a directory entry (rename durability on POSIX).

    Best-effort: some filesystems refuse to fsync a directory handle;
    the rename itself is still atomic there.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WALFrame:
    """One durably acknowledged log record."""

    lsn: int
    record: dict


@dataclass(frozen=True)
class WALReplay:
    """The outcome of scanning a log: valid frames plus tail accounting.

    ``valid_bytes`` is the offset of the first byte *not* covered by a
    valid frame; ``torn_bytes`` counts the discarded tail beyond it.
    """

    frames: tuple[WALFrame, ...]
    valid_bytes: int
    torn_bytes: int

    @property
    def last_lsn(self) -> int:
        """LSN of the last valid frame (0 for an empty log)."""
        return self.frames[-1].lsn if self.frames else 0


def replay_wal(path: str | Path) -> WALReplay:
    """Scan the log at *path*, tolerating a torn tail.

    Frames are accepted until the first short header, short payload or
    CRC mismatch; the remainder is reported as ``torn_bytes``.  Raises
    :class:`StorageError` (``diagnosis="unreadable"``) when the file
    cannot be read and (``diagnosis="corrupted"``) when the content is
    structurally impossible for a torn write: wrong magic, undecodable
    payload behind a valid CRC, or a non-consecutive LSN.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read WAL at {path}: {exc}",
                           diagnosis="unreadable", path=path) from exc
    if data[:len(WAL_MAGIC)] != WAL_MAGIC:
        if WAL_MAGIC.startswith(data):
            # a crash during creation left a partial magic: an empty log
            return WALReplay(frames=(), valid_bytes=0, torn_bytes=len(data))
        raise StorageError(
            f"bad WAL magic in {path}: not a GKS write-ahead log",
            diagnosis="corrupted", path=path)

    frames: list[WALFrame] = []
    offset = len(WAL_MAGIC)
    while True:
        header = data[offset:offset + _FRAME_HEADER.size]
        if len(header) < _FRAME_HEADER.size:
            break  # torn tail: incomplete header
        length, lsn, crc = _FRAME_HEADER.unpack(header)
        start = offset + _FRAME_HEADER.size
        payload = data[start:start + length]
        if len(payload) < length or _frame_crc(lsn, payload) != crc:
            break  # torn tail: incomplete payload or garbage header
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            # a valid CRC over an undecodable payload was *written* that
            # way — corruption at the producer, not a torn write
            raise StorageError(
                f"undecodable WAL frame at lsn {lsn} in {path}: {exc}",
                diagnosis="corrupted", path=path) from exc
        expected = frames[-1].lsn + 1 if frames else lsn
        if lsn != expected:
            raise StorageError(
                f"non-consecutive WAL lsn in {path}: frame {lsn} follows "
                f"{frames[-1].lsn}", diagnosis="corrupted", path=path)
        frames.append(WALFrame(lsn=lsn, record=record))
        offset = start + length
    return WALReplay(frames=tuple(frames), valid_bytes=offset,
                     torn_bytes=len(data) - offset)


class WriteAheadLog:
    """An append-only, fsync-per-record log.

    Use :meth:`create` for a fresh log and :meth:`open` to recover an
    existing one (the torn tail, if any, is truncated away so new
    appends continue from the last durable frame).  ``fsync=False``
    trades durability for speed — test/bench use only.
    """

    def __init__(self, path: str | Path, *, last_lsn: int = 0,
                 fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._last_lsn = last_lsn
        # The engine's mutation lock serializes the durable path today,
        # but the log's own invariants (consecutive LSNs, handle swap
        # during truncation) must not depend on the caller's discipline.
        # guards: _last_lsn, _handle
        self._lock = new_lock("index.wal")
        try:
            self._handle = open(self.path, "ab")
        except OSError as exc:
            raise StorageError(f"cannot open WAL at {self.path}: {exc}",
                               diagnosis="unwritable", path=self.path) from exc

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | Path, *, fsync: bool = True
               ) -> "WriteAheadLog":
        """Write a fresh, empty log (magic only) at *path*."""
        path = Path(path)
        try:
            with open(path, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot create WAL at {path}: {exc}",
                               diagnosis="unwritable", path=path) from exc
        fsync_directory(path.parent)
        return cls(path, last_lsn=0, fsync=fsync)

    @classmethod
    def open(cls, path: str | Path, *, fsync: bool = True
             ) -> tuple["WriteAheadLog", WALReplay]:
        """Recover the log at *path*; returns the log and its replay.

        A torn tail is truncated in place before the log accepts new
        appends — appending after garbage bytes would corrupt the next
        replay.
        """
        replay = replay_wal(path)
        if replay.torn_bytes:
            try:
                if replay.valid_bytes >= len(WAL_MAGIC):
                    os.truncate(str(path), replay.valid_bytes)
                else:
                    # partial magic from a crash mid-create: rewrite it
                    with open(path, "wb") as handle:
                        handle.write(WAL_MAGIC)
                        handle.flush()
                        os.fsync(handle.fileno())
            except OSError as exc:
                raise StorageError(
                    f"cannot truncate torn WAL tail at {path}: {exc}",
                    diagnosis="unwritable", path=path) from exc
        return cls(path, last_lsn=replay.last_lsn, fsync=fsync), replay

    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    def ensure_lsn(self, lsn: int) -> None:
        """Never re-issue an LSN: raise the counter to at least *lsn*.

        After a checkpoint truncates every frame the log can come back
        empty; the manifest still remembers the highest flushed LSN and
        recovery pushes it here so new appends keep counting upward.
        """
        with self._lock:
            self._last_lsn = max(self._last_lsn, lsn)

    def append(self, record: dict) -> int:
        """Durably append *record*; returns its LSN.

        The write is flushed and fsynced before returning — when this
        method returns, the record survives a crash.
        """
        registry = global_registry()
        started = DEFAULT_CLOCK()
        with self._lock:
            lsn = self._last_lsn + 1
            frame = _encode_frame(lsn, record)
            try:
                self._handle.write(frame)
                self._handle.flush()
                if self._fsync:
                    fsync_started = DEFAULT_CLOCK()
                    os.fsync(self._handle.fileno())
                    registry.histogram(
                        "gks_wal_fsync_seconds",
                        help="Wall time of per-append WAL fsync calls."
                    ).observe(DEFAULT_CLOCK() - fsync_started)
            except OSError as exc:
                raise StorageError(
                    f"cannot append to WAL at {self.path}: {exc}",
                    diagnosis="unwritable", path=self.path) from exc
            self._last_lsn = lsn
        registry.histogram(
            "gks_wal_append_seconds",
            help="Wall time of durable WAL appends (write+flush+fsync)."
        ).observe(DEFAULT_CLOCK() - started)
        registry.counter(
            "gks_wal_appends_total",
            help="Records durably appended to the write-ahead log."
        ).inc()
        registry.counter(
            "gks_wal_appended_bytes_total",
            help="Framed bytes appended to the write-ahead log."
        ).inc(len(frame))
        return lsn

    def truncate_through(self, lsn: int) -> None:
        """Checkpoint: drop every frame with an LSN <= *lsn*.

        The log is rewritten to a temporary file and renamed into place
        (atomic), keeping the surviving frames' LSNs — a crash during
        truncation leaves either the old log or the new one, both valid.
        """
        with self._lock:
            replay = replay_wal(self.path)
            keep = [frame for frame in replay.frames if frame.lsn > lsn]
            temp_path = self.path.with_name(self.path.name + ".tmp")
            try:
                with open(temp_path, "wb") as handle:
                    handle.write(WAL_MAGIC)
                    for frame in keep:
                        handle.write(_encode_frame(frame.lsn, frame.record))
                    handle.flush()
                    os.fsync(handle.fileno())
                self._handle.close()
                os.replace(temp_path, self.path)
            except OSError as exc:
                try:
                    temp_path.unlink()
                except OSError:
                    pass
                raise StorageError(
                    f"cannot truncate WAL at {self.path}: {exc}",
                    diagnosis="unwritable", path=self.path) from exc
            fsync_directory(self.path.parent)
            self._handle = open(self.path, "ab")
        global_registry().counter(
            "gks_wal_truncations_total",
            help="Checkpoint truncations rewriting the WAL."
        ).inc()

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WriteAheadLog {self.path} lsn={self._last_lsn}>"
