"""Unit tests for the XML tree node model."""

import pytest

from repro.xmltree.node import XMLNode, build_tree


@pytest.fixture
def small_tree() -> XMLNode:
    return build_tree(("r", [
        ("a", "hello", [("b", "world")]),
        ("a", [("c",)]),
        ("d", "leaf"),
    ]))


class TestConstruction:
    def test_add_child_assigns_next_ordinal(self):
        root = XMLNode("r", (0,))
        first = root.add_child("a")
        second = root.add_child("b")
        assert first.dewey == (0, 0)
        assert second.dewey == (0, 1)
        assert second.parent is root

    def test_build_tree_spec_variants(self, small_tree):
        assert small_tree.tag == "r"
        assert small_tree.children[0].text == "hello"
        assert small_tree.children[0].children[0].tag == "b"
        assert small_tree.children[1].children[0].is_leaf


class TestStructureQueries:
    def test_iter_subtree_is_document_order(self, small_tree):
        deweys = [node.dewey for node in small_tree.iter_subtree()]
        assert deweys == sorted(deweys)
        assert deweys[0] == (0,)

    def test_iter_descendants_excludes_self(self, small_tree):
        descendants = list(small_tree.iter_descendants())
        assert small_tree not in descendants
        assert len(descendants) == 5

    def test_iter_ancestors_nearest_first(self, small_tree):
        leaf = small_tree.children[0].children[0]
        tags = [node.tag for node in leaf.iter_ancestors()]
        assert tags == ["a", "r"]

    def test_find_first_and_all(self, small_tree):
        assert small_tree.find_first("b").dewey == (0, 0, 0)
        assert len(small_tree.find_all("a")) == 2
        assert small_tree.find_first("nope") is None

    def test_path_from_ancestor(self, small_tree):
        leaf = small_tree.children[0].children[0]
        path = leaf.path_from(small_tree)
        assert [node.tag for node in path] == ["r", "a", "b"]

    def test_path_from_non_ancestor_fails(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.children[0].path_from(small_tree.children[1])

    def test_tag_path_from_root(self, small_tree):
        leaf = small_tree.children[0].children[0]
        assert leaf.tag_path() == ["r", "a", "b"]

    def test_same_label_sibling_count(self, small_tree):
        first_a, second_a, d = small_tree.children
        assert first_a.same_label_sibling_count() == 1
        assert second_a.same_label_sibling_count() == 1
        assert d.same_label_sibling_count() == 0
        assert small_tree.same_label_sibling_count() == 0  # root

    def test_depth_property(self, small_tree):
        assert small_tree.depth == 0
        assert small_tree.children[0].children[0].depth == 2


class TestContent:
    def test_subtree_text_concatenates_in_order(self, small_tree):
        assert small_tree.subtree_text() == "hello world leaf"

    def test_has_text_ignores_whitespace(self):
        node = XMLNode("a", (0,), text="   ")
        assert not node.has_text

    def test_equality_and_hash_by_dewey(self):
        one = XMLNode("a", (0, 1))
        two = XMLNode("a", (0, 1))
        other = XMLNode("a", (0, 2))
        assert one == two
        assert hash(one) == hash(two)
        assert one != other
