"""Tests for the experiment runners (content-level checks — the
benchmarks wrap these same functions with timers)."""

import pytest

from repro.eval.runner import (build_hybrid_repository, engine_for,
                               feedback_table, figure9_series,
                               figure10_series, frequency_ladder,
                               hybrid_experiment, queries_for_figure8,
                               refinement_case, table7_rows, table8_rows)


class TestEngineCache:
    def test_engine_for_caches(self):
        assert engine_for("figure1") is engine_for("figure1")
        assert engine_for("figure1") is not engine_for("figure2a")


class TestFrequencyLadder:
    def test_descending_document_frequency(self):
        engine = engine_for("figure2a")
        ladder = frequency_ladder(engine.index, count=5, minimum_df=1)
        frequencies = [engine.index.inverted.document_frequency(keyword)
                       for keyword in ladder]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_minimum_df_filter(self):
        engine = engine_for("figure2a")
        ladder = frequency_ladder(engine.index, count=50, minimum_df=3)
        for keyword in ladder:
            assert engine.index.inverted.document_frequency(keyword) >= 3


class TestQueryFactories:
    def test_figure8_queries_have_fixed_n(self):
        engine = engine_for("nasa")
        for query in queries_for_figure8(engine.index, n=8):
            assert len(query.keywords) == 8

    def test_figure9_series_points(self):
        points = figure9_series("figure2a", sizes=(2, 4))
        assert [n for n, _ in points] == [2, 4]
        assert all(ms >= 0 for _, ms in points)


class TestExperimentContent:
    def test_table7_rows_cover_workload(self):
        rows = table7_rows()
        assert len(rows) == 14
        assert all(row.gks_s1 >= row.gks_half for row in rows)

    def test_table8_rows_have_di(self):
        rows = table8_rows(top=2)
        assert len(rows) == 14
        assert any(row.di_s1 for row in rows)

    def test_refinement_case(self):
        case = refinement_case()
        assert case.di_coauthor_found
        assert case.refined_results == 10

    def test_hybrid_outcome(self):
        outcome = hybrid_experiment()
        assert (outcome.total_results, outcome.dblp_hits,
                outcome.sigmod_hits) == (8, 3, 5)
        assert outcome.sigmod_ranked_first

    def test_hybrid_repository_shape(self):
        repository = build_hybrid_repository()
        assert len(repository) == 1  # one common root
        root = repository[0].root
        assert root.tag == "collection"
        # the SIGMOD side sits two connecting nodes deeper (§7.6)
        sigmod = root.find_first("SigmodRecord")
        dblp = root.find_first("dblp")
        assert sigmod is not None and dblp is not None
        assert len(sigmod.dewey) - len(dblp.dewey) == 2

    def test_feedback_table_dimensions(self):
        table = feedback_table(users=10)
        assert len(table.rows) == 12
        assert table.total_ratings == 120

    def test_figure10_sl_scales_linearly(self):
        points = figure10_series(dataset="figure2a", factors=(1, 2))
        assert points[1][2] == points[0][2] * 2
