"""Property tests for the XPath-lite evaluator against a naive
reference implementation."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.xmltree.node import XMLNode, build_tree
from repro.xmltree.xpath import select

TAGS = ["aa", "bb", "cc"]
VALUES = ["x", "y"]


def spec_strategy():
    leaf = st.tuples(st.sampled_from(TAGS), st.sampled_from(VALUES))
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(TAGS),
            st.lists(children, min_size=1, max_size=3)),
        max_leaves=12,
    ).map(lambda spec: ("root", [spec]) if not isinstance(spec[1], list)
          else ("root", spec[1]))


def reference_descendants(root: XMLNode, tag: str) -> list[XMLNode]:
    return [node for node in root.iter_subtree() if node.tag == tag]


def reference_children(nodes: list[XMLNode], tag: str) -> list[XMLNode]:
    found = []
    for node in nodes:
        found.extend(child for child in node.children
                     if child.tag == tag)
    return found


@settings(max_examples=150, deadline=None)
@given(spec_strategy(), st.sampled_from(TAGS))
def test_descendant_axis_matches_reference(spec, tag):
    root = build_tree(spec)
    expected = [node.dewey for node in reference_descendants(root, tag)]
    actual = [node.dewey for node in select(root, f"//{tag}")]
    assert actual == expected


@settings(max_examples=150, deadline=None)
@given(spec_strategy(), st.sampled_from(TAGS), st.sampled_from(TAGS))
def test_child_chain_matches_reference(spec, first, second):
    root = build_tree(spec)
    expected = [node.dewey for node in reference_children(
        reference_children([root], first), second)]
    actual = [node.dewey for node in select(root, f"{first}/{second}")]
    assert actual == expected


@settings(max_examples=150, deadline=None)
@given(spec_strategy(), st.sampled_from(TAGS), st.sampled_from(VALUES))
def test_text_predicate_matches_reference(spec, tag, value):
    root = build_tree(spec)
    expected = [node.dewey
                for node in reference_descendants(root, tag)
                if (node.text or "").strip() == value]
    actual = [node.dewey
              for node in select(root, f"//{tag}[text()='{value}']")]
    assert actual == expected


@settings(max_examples=100, deadline=None)
@given(spec_strategy(), st.sampled_from(TAGS))
def test_wildcard_parent_covers_all_children(spec, tag):
    root = build_tree(spec)
    # reference: */tag selects grandchildren of the root with that tag
    expected = [grandchild.dewey
                for child in root.children
                for grandchild in child.children
                if grandchild.tag == tag]
    actual = [node.dewey for node in select(root, f"*/{tag}")]
    assert actual == expected
