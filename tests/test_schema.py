"""Tests for schema inference and schema-level categorization."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.core.search import search
from repro.datasets.registry import load_dataset
from repro.datasets.toy import figure2a
from repro.index.builder import build_index
from repro.index.categorize import NodeCategory
from repro.schema import (build_schema_index, categorize_by_schema,
                          categorize_schema, compare_with_instance_level,
                          infer_schema)
from repro.xmltree.node import build_tree
from repro.xmltree.repository import Repository


@pytest.fixture(scope="module")
def fig2a_schema():
    repo = Repository()
    repo.add_root(figure2a())
    return repo, infer_schema(repo)


class TestInference:
    def test_types_keyed_by_tag_path(self, fig2a_schema):
        _, schema = fig2a_schema
        course = schema.type_of(("Dept", "Area", "Courses", "Course"))
        assert course is not None
        assert course.occurrences == 5
        assert course.tag == "Course"

    def test_child_multiplicities(self, fig2a_schema):
        _, schema = fig2a_schema
        students = schema.type_of(
            ("Dept", "Area", "Courses", "Course", "Students"))
        low, high = students.child_multiplicity["Student"]
        assert low >= 1 and high == 4
        assert students.is_repeatable_child("Student")

    def test_optional_children_detected(self):
        root = build_tree(("r", [
            ("item", [("name", "a"), ("extra", "x")]),
            ("item", [("name", "b")]),
        ]))
        schema = infer_schema(root)
        item = schema.type_of(("r", "item"))
        assert item.is_optional_child("extra")
        assert not item.is_optional_child("name")

    def test_content_model_rendering(self, fig2a_schema):
        _, schema = fig2a_schema
        students = schema.type_of(
            ("Dept", "Area", "Courses", "Course", "Students"))
        assert students.content_model() == "(Student+)"
        name = schema.type_of(
            ("Dept", "Area", "Courses", "Course", "Name"))
        assert name.content_model() == "(#PCDATA)"

    def test_render_lists_every_type(self, fig2a_schema):
        _, schema = fig2a_schema
        text = schema.render()
        assert text.count("\n") + 1 == len(schema)

    def test_same_tag_in_different_contexts(self):
        # <name> under country vs under city are distinct types
        root = build_tree(("r", [
            ("country", [("name", "Laos"), ("city", [("name", "V")]),
                         ("city", [("name", "W")])]),
        ]))
        schema = infer_schema(root)
        assert schema.type_of(("r", "country", "name")) is not None
        assert schema.type_of(("r", "country", "city", "name")) \
            is not None


class TestSchemaCategorization:
    def test_figure2a_types_match_instance_categories(self, fig2a_schema):
        repo, schema = fig2a_schema
        categories = categorize_schema(schema)
        course = categories[("Dept", "Area", "Courses", "Course")]
        assert course.category is NodeCategory.ENTITY
        assert course.is_repeating
        students = categories[
            ("Dept", "Area", "Courses", "Course", "Students")]
        assert students.category is NodeCategory.CONNECTING
        student = categories[
            ("Dept", "Area", "Courses", "Course", "Students", "Student")]
        assert student.category is NodeCategory.REPEATING

    def test_missing_element_smoothing(self):
        # second record has a single author: instance-level CN/RN,
        # schema-level still an entity
        root = build_tree(("dblp", [
            ("article", [("title", "x"), ("author", "a"),
                         ("author", "b")]),
            ("article", [("title", "y"), ("author", "c")]),
        ]))
        repo = Repository()
        repo.add_root(root)
        by_schema = categorize_by_schema(repo)
        assert by_schema[(0, 0)].category is NodeCategory.ENTITY
        assert by_schema[(0, 1)].category is NodeCategory.ENTITY
        from repro.index.categorize import categorize_tree

        by_instance = categorize_tree(root)
        assert by_instance[(0, 1)].category is not NodeCategory.ENTITY

    def test_comparison_counters(self):
        repo = load_dataset("dblp")
        counters = compare_with_instance_level(repo)
        assert counters["total"] > 0
        assert counters["agree"] / counters["total"] > 0.9
        assert counters["promoted_to_entity"] > 0  # 1-author entries


class TestSchemaIndex:
    def test_single_author_article_becomes_lce(self):
        root = build_tree(("dblp", [
            ("article", [("title", "alpha"), ("author", "karen"),
                         ("author", "mike")]),
            ("article", [("title", "beta"), ("author", "zoe")]),
        ]))
        repo = Repository()
        repo.add_root(root)

        instance_engine = GKSEngine(repo)
        schema_index = build_schema_index(repo)

        query = Query.of(["zoe"], s=1)
        instance_response = search(instance_engine.index, query)
        schema_response = search(schema_index, query)

        # instance level: the 1-author article is not an entity, so the
        # match is not an LCE node; schema level: it is.
        assert not any(node.is_lce and node.dewey == (0, 1)
                       for node in instance_response)
        assert any(node.is_lce and node.dewey == (0, 1)
                   for node in schema_response)

    def test_schema_index_searches_like_instance_index(self):
        repo = load_dataset("figure2a")
        instance_index = build_index(repo)
        schema_index = build_schema_index(repo)
        query = Query.of(["karen", "mike"], s=2)
        assert search(schema_index, query).deweys == \
            search(instance_index, query).deweys

    def test_schema_index_entity_count_stat(self):
        repo = load_dataset("dblp")
        schema_index = build_schema_index(repo)
        instance_index = build_index(repo)
        assert schema_index.stats.entity_nodes >= \
            instance_index.stats.entity_nodes
