"""Tests for the GKSEngine facade and result rendering."""

import pytest

from repro.core.engine import GKSEngine
from repro.datasets.toy import figure2a
from repro.index.storage import load_index, save_index
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_node


class TestConstruction:
    def test_from_texts(self):
        engine = GKSEngine.from_texts(["<r><a>karen</a></r>"])  # gks: ignore[D001]
        assert len(engine.search("karen")) == 1

    def test_from_paths(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<r><a>karen</a></r>")
        engine = GKSEngine.from_paths([path])  # gks: ignore[D001]
        assert len(engine.search("karen")) == 1

    def test_prebuilt_index_is_reused(self, figure2a_repo):
        first = GKSEngine(figure2a_repo)
        second = GKSEngine(figure2a_repo, index=first.index)
        assert second.index is first.index

    def test_persisted_index_round_trip(self, figure2a_repo, tmp_path):
        engine = GKSEngine(figure2a_repo)
        path = save_index(engine.index, tmp_path / "idx.gz")
        reloaded = GKSEngine(figure2a_repo, index=load_index(path))
        original = engine.search("karen mike", s=2).deweys
        assert reloaded.search("karen mike", s=2).deweys == original


class TestSearchFacade:
    def test_string_query_parsed_with_s(self, figure2a_engine):
        response = figure2a_engine.search("karen mike", s=2)
        assert response.query.s == 2
        assert response.query.keywords == ("karen", "mike")

    def test_query_object_accepted(self, figure2a_engine):
        from repro.core.query import Query

        response = figure2a_engine.search(Query.of(["karen"]), s=1)
        assert len(response) > 0

    def test_default_s_is_one(self, figure2a_engine):
        response = figure2a_engine.search("karen mike")
        assert response.query.s == 1

    def test_quoted_phrase_query(self, figure2a_engine):
        response = figure2a_engine.search('"data mining"')
        assert len(response) == 1
        assert response[0].dewey == (0, 1, 1, 0)


class TestAnalysisFacade:
    def test_insights_shortcut(self, figure2a_engine):
        response = figure2a_engine.search("karen mike john", s=2)
        report = figure2a_engine.insights(response)
        assert any("Data Mining" in insight.render()
                   for insight in report)

    def test_recursive_insights(self, figure2a_engine):
        response = figure2a_engine.search("karen", s=1)
        reports = figure2a_engine.recursive_insights(response, rounds=1)
        assert len(reports) >= 1

    def test_refine_computes_di_when_needed(self, figure2a_engine):
        response = figure2a_engine.search("karen mike zzz", s=1)
        suggestions = figure2a_engine.refine(response)
        assert suggestions  # at least the DI expansions


class TestRendering:
    def test_snippet_serializes_result(self, figure2a_engine):
        response = figure2a_engine.search('"data mining"')
        snippet = figure2a_engine.snippet(response[0])
        assert "<Course>" in snippet
        assert "Data Mining" in snippet

    def test_snippet_depth_limit(self, figure2a_engine):
        response = figure2a_engine.search('"data mining"')
        shallow = figure2a_engine.snippet(response[0], max_depth=1)
        assert "Karen" not in shallow    # students live at depth 2
        assert "Data Mining" in shallow

    def test_snippet_for_missing_node(self, figure2a_engine):
        assert "missing node" in figure2a_engine.snippet((9, 9, 9))

    def test_describe_one_liner(self, figure2a_engine):
        response = figure2a_engine.search("karen mike", s=2)
        line = figure2a_engine.describe(response[0])
        assert "score=" in line and "keywords[" in line

    def test_node_at_passthrough(self, figure2a_engine):
        node = figure2a_engine.node_at((0, 1, 1, 0))
        assert node is not None and node.tag == "Course"
