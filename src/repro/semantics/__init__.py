"""Query-mode semantics beyond strict ``min(s, |Q|)`` containment.

Two modes, both selected through ``EngineConfig.mode`` / per-request
``SearchOptions.mode`` and threaded through the whole stack:

* ``probabilistic`` — p-documents (PrXML IND/MUX distributional nodes
  declared via the ``p:`` attribute convention) evaluated exactly: each
  result node carries the possible-worlds probability that it exists
  *and* its subtree holds ≥ ``min(s, |Q|)`` distinct query keywords,
  filtered by a ``threshold`` knob (:mod:`repro.semantics.prob`).
* ``relaxed`` — no-but-semantic-match: when strict search is empty, a
  single-edit relaxation vocabulary (keyword drop, tag generalization,
  sibling-term substitution) derived from the corpus rescues the query
  with penalty-ranked, provenance-marked results
  (:mod:`repro.semantics.relax`).

Both are validated against brute-force oracles in ``repro.baselines``
(possible-worlds enumeration; exhaustive relaxation), the same way every
existing semantics in this repo is.
"""

from repro.core.config import MODES
from repro.semantics.pdoc import (attach_tables, compile_tables,
                                  extract_pdoc, has_prob_tables,
                                  tables_of)
from repro.semantics.prob import probabilistic_search
from repro.semantics.relax import (RelaxVocabulary, relax_search,
                                   relaxation_candidates,
                                   relaxation_vocabulary)

__all__ = [
    "MODES", "RelaxVocabulary", "attach_tables", "compile_tables",
    "extract_pdoc", "has_prob_tables", "probabilistic_search",
    "relax_search", "relaxation_candidates", "relaxation_vocabulary",
    "tables_of",
]
