"""Project-specific lint rules: timing, error surface, mutability, fork
safety.

Rule catalog (ids are what ``# gks: ignore[...]`` takes):

========  ==========================================================
``T001``  Ad-hoc clock: ``time.perf_counter``/``time.time``/
          ``time.monotonic`` referenced inside ``repro.core`` or
          ``repro.index`` — timing there must flow through the tracer
          clock (:data:`repro.obs.trace.DEFAULT_CLOCK` or an injected
          ``clock`` callable), so every duration in the pipeline
          answers to one injectable source.
``E001``  Bare ``except:`` — swallows ``KeyboardInterrupt`` and
          ``SystemExit``; name the exceptions (any file).
``E002``  Library code raising bare ``ValueError``/``RuntimeError`` —
          use the :class:`~repro.errors.GKSError` hierarchy
          (:class:`~repro.errors.ConfigError` for tuning knobs,
          :class:`~repro.errors.ValidationError` for argument
          contracts); both remain ``ValueError`` subclasses.
``M001``  Mutable default argument (``def f(x=[])``) — shared across
          calls; default to ``None`` (any file).
``M002``  ``@dataclass`` in ``repro.core.config`` / ``repro.obs.stats``
          not declared ``frozen=True`` — config and stats records are
          part of the cached/hashable surface and must stay immutable.
``D001``  Deprecated engine factory: ``GKSEngine.from_texts`` /
          ``GKSEngine.from_paths`` referenced — both are thin legacy
          shims; new code goes through ``GKSEngine.open`` with an
          :class:`~repro.core.config.EngineConfig` (the one factory
          that understands every knob, including ``codec``).
``F001``  Module-level mutable state mutated inside a function used as
          a process-pool worker target — each forked worker mutates
          its private copy, so the write is silently lost (and under a
          ``spawn``/``forkserver`` start method the global may not
          even exist).  Workers may *read* fork-inherited state;
          mutation belongs to the parent.
========  ==========================================================

The architecture (layering) rules ``L001``/``L002`` live in
:mod:`repro.analysis.layering`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.lint import ModuleInfo, Rule, register

#: Packages whose timing must flow through the tracer clock.
CLOCK_DISCIPLINED_PACKAGES = ("core", "index")

#: ``time`` attributes that read a clock.
_CLOCK_NAMES = ("perf_counter", "time", "monotonic", "perf_counter_ns",
                "monotonic_ns", "time_ns")

#: Modules whose dataclasses must be ``frozen=True``.
FROZEN_DATACLASS_MODULES = ("repro.core.config", "repro.obs.stats")

#: Builtin exception types library code must not raise bare.
_BANNED_RAISES = ("ValueError", "RuntimeError")


@register
class AdHocClockRule(Rule):
    """T001 — core/index must time through the tracer clock."""

    rule_id = "T001"
    title = ("no ad-hoc time.perf_counter/time.time in repro.core or "
             "repro.index; use repro.obs.trace.DEFAULT_CLOCK or an "
             "injected clock")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.package not in CLOCK_DISCIPLINED_PACKAGES:
            return
        for node in module.walk():
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "time"
                    and node.attr in _CLOCK_NAMES):
                yield self.finding(
                    module, node.lineno,
                    f"ad-hoc clock time.{node.attr} in "
                    f"{module.module}; timing in repro.core/repro.index "
                    f"must flow through the tracer clock "
                    f"(repro.obs.trace.DEFAULT_CLOCK)")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                clocky = [alias.name for alias in node.names
                          if alias.name in _CLOCK_NAMES]
                if clocky:
                    yield self.finding(
                        module, node.lineno,
                        f"importing {', '.join(clocky)} from time in "
                        f"{module.module}; use the tracer clock instead")


@register
class BareExceptRule(Rule):
    """E001 — no bare ``except:`` clauses anywhere."""

    rule_id = "E001"
    title = "no bare except: clauses (they swallow KeyboardInterrupt)"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node.lineno,
                    "bare except: clause; name the exception types "
                    "(GKSError for the library surface)")


@register
class BuiltinRaiseRule(Rule):
    """E002 — library code raises typed GKS errors, not bare builtins."""

    rule_id = "E002"
    title = ("library code must raise the GKSError hierarchy, not bare "
             "ValueError/RuntimeError")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.role != "library":
            return
        for node in module.walk():
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BANNED_RAISES:
                yield self.finding(
                    module, node.lineno,
                    f"raise {name} in library code; use ConfigError / "
                    f"ValidationError (both GKSError and ValueError) or "
                    f"another GKSError subclass")


@register
class MutableDefaultRule(Rule):
    """M001 — no mutable default arguments."""

    rule_id = "M001"
    title = "no mutable default arguments (shared across calls)"

    _FACTORY_NAMES = ("list", "dict", "set")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module, default.lineno,
                        f"mutable default argument in {label}(); "
                        f"default to None and build inside the body")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._FACTORY_NAMES)


@register
class FrozenDataclassRule(Rule):
    """M002 — config/stats dataclasses must be frozen."""

    rule_id = "M002"
    title = ("@dataclass in repro.core.config and repro.obs.stats must "
             "be frozen=True")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module not in FROZEN_DATACLASS_MODULES:
            return
        for node in module.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if self._is_unfrozen_dataclass(decorator):
                    yield self.finding(
                        module, node.lineno,
                        f"dataclass {node.name} in {module.module} must "
                        f"be @dataclass(frozen=True)")

    @staticmethod
    def _is_unfrozen_dataclass(decorator: ast.AST) -> bool:
        if isinstance(decorator, ast.Name):
            return decorator.id == "dataclass"        # bare => unfrozen
        if (isinstance(decorator, ast.Call)
                and isinstance(decorator.func, ast.Name)
                and decorator.func.id == "dataclass"):
            for keyword in decorator.keywords:
                if (keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True):
                    return False
            return True
        return False


#: Legacy engine factories; ``GKSEngine.open`` is the one blessed path.
_DEPRECATED_FACTORIES = ("from_texts", "from_paths")


@register
class DeprecatedFactoryRule(Rule):
    """D001 — ``GKSEngine.from_texts``/``from_paths`` are legacy shims."""

    rule_id = "D001"
    title = ("GKSEngine.from_texts/from_paths are deprecated; use "
             "GKSEngine.open(source, config=EngineConfig(...))")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.walk():
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "GKSEngine"
                    and node.attr in _DEPRECATED_FACTORIES):
                yield self.finding(
                    module, node.lineno,
                    f"GKSEngine.{node.attr} is a deprecated shim; use "
                    f"GKSEngine.open(source, config=EngineConfig(...)) "
                    f"— it sniffs texts/paths/Repository and understands "
                    f"every EngineConfig knob (shards, index_path, "
                    f"codec, ...)")


_MUTATING_METHODS = ("append", "extend", "insert", "add", "update",
                     "clear", "pop", "popitem", "setdefault", "remove",
                     "discard", "sort")


@register
class ForkSafetyRule(Rule):
    """F001 — pool-worker functions must not mutate module globals."""

    rule_id = "F001"
    title = ("functions used as process-pool worker targets must not "
             "mutate module-level mutable state")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.role != "library" or module.tree is None:
            return
        mutable_globals = self._module_level_mutables(module.tree)
        if not mutable_globals:
            return
        worker_names = self._worker_targets(module.tree)
        if not worker_names:
            return
        for node in ast.iter_child_nodes(module.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in worker_names):
                yield from self._mutations_in(module, node,
                                              mutable_globals)

    @staticmethod
    def _module_level_mutables(tree: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.iter_child_nodes(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if isinstance(value, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("list", "dict", "set",
                                          "defaultdict", "deque")):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _worker_targets(tree: ast.AST) -> set[str]:
        """Function names handed to pool.map/submit or Process(target=)."""
        workers: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("map", "submit", "apply_async")
                    and node.args
                    and isinstance(node.args[0], ast.Name)):
                workers.add(node.args[0].id)
            for keyword in node.keywords:
                if (keyword.arg == "target"
                        and isinstance(keyword.value, ast.Name)):
                    workers.add(keyword.value.id)
        return workers

    def _mutations_in(self, module: ModuleInfo, function: ast.AST,
                      globals_: set[str]) -> Iterable[Finding]:
        for node in ast.walk(function):
            # NAME.method(...) where method mutates in place
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in globals_):
                yield self.finding(
                    module, node.lineno,
                    f"worker function {function.name}() mutates "
                    f"module-level {node.func.value.id}."
                    f"{node.func.attr}(); fork-inherited state is "
                    f"read-only in workers")
            # NAME[...] = ... / del NAME[...] / NAME = ... via `global`
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target]
                           if isinstance(node, ast.AugAssign)
                           else node.targets)
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if (isinstance(base, ast.Name)
                            and base.id in globals_
                            and not isinstance(target, ast.Name)):
                        yield self.finding(
                            module, node.lineno,
                            f"worker function {function.name}() assigns "
                            f"into module-level {base.id}; "
                            f"fork-inherited state is read-only in "
                            f"workers")
