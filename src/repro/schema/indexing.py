"""Schema-aware index construction.

Builds a :class:`GKSIndex` whose hash tables file every element under its
*type's* category rather than its instance category.  Search, ranking and
DI run unchanged on top; the observable difference is that instances of
entity types with missing elements (single-author articles) behave as
entities: they become LCE nodes instead of dissolving into their
ancestors — the fix the paper sketches for the MESSIAH-style missing
element problem (§1.1, §2.2).
"""

from __future__ import annotations

from repro.index.builder import GKSIndex, IndexBuilder
from repro.index.categorize import NodeCategory
from repro.index.hashtables import NodeHashes
from repro.schema.categorize import categorize_by_schema
from repro.schema.inference import Schema, infer_schema
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.repository import Repository


def build_schema_index(repository: Repository,
                       analyzer: Analyzer = DEFAULT_ANALYZER,
                       index_tags: bool = True,
                       schema: Schema | None = None) -> GKSIndex:
    """Index *repository* with schema-level node categories."""
    builder = IndexBuilder(analyzer=analyzer, index_tags=index_tags)
    builder.add_repository(repository)
    base = builder.build()

    if schema is None:
        schema = infer_schema(repository)
    type_map = categorize_by_schema(repository, schema)

    hashes = NodeHashes()
    entity_count = 0
    for document in repository:
        for node in document.root.iter_subtree():
            assignment = type_map.get(node.dewey)
            if assignment is None:
                continue
            category = assignment.category
            if category is NodeCategory.ENTITY:
                entity_count += 1
            _file(hashes, node.dewey, node.child_count, category,
                  assignment.is_repeating)

    stats = base.stats
    stats.entity_nodes = entity_count
    return GKSIndex(inverted=base.inverted, hashes=hashes, stats=stats,
                    analyzer=base.analyzer,
                    document_names=base.document_names)


def _file(hashes: NodeHashes, dewey, child_count: int,
          category: NodeCategory, is_repeating: bool) -> None:
    from repro.index.categorize import CategoryRecord

    hashes.add_record(CategoryRecord(
        dewey=dewey, tag="", category=category,
        is_repeating=is_repeating, child_count=child_count))
