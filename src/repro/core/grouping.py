"""Grouping GKS responses by result type.

A GKS response can mix differently-typed nodes — the §7.6 hybrid query
returns ``<article>`` and ``<inproceedings>`` results side by side.
Grouping by element tag (or full tag path) turns the flat ranked list
into the per-type presentation a UI would show, while preserving the
global rank order inside each group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import GKSResponse, RankedNode
from repro.xmltree.repository import Repository


@dataclass(frozen=True)
class ResultGroup:
    """Results of one element type, best first."""

    label: str
    nodes: tuple[RankedNode, ...]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    @property
    def best_score(self) -> float:
        return self.nodes[0].score if self.nodes else 0.0

    @property
    def total_score(self) -> float:
        return sum(node.score for node in self.nodes)


def group_by_tag(repository: Repository, response: GKSResponse,
                 full_path: bool = False) -> list[ResultGroup]:
    """Partition a response by the result elements' tag (or tag path).

    Groups are ordered by their best-ranked member, matching how the
    flat ranking would interleave them.
    """
    buckets: dict[str, list[RankedNode]] = {}
    for node in response:
        element = repository.node_at(node.dewey)
        if element is None:
            label = "?"
        elif full_path:
            label = "/".join(element.tag_path())
        else:
            label = element.tag
        buckets.setdefault(label, []).append(node)

    groups = [ResultGroup(label=label, nodes=tuple(nodes))
              for label, nodes in buckets.items()]
    groups.sort(key=lambda group: (-group.best_score, group.label))
    return groups


def dominant_group(repository: Repository,
                   response: GKSResponse) -> ResultGroup | None:
    """The group carrying the most total rank — the de-facto result type.

    This is the empirical counterpart of target-type deduction: for the
    Example 2 query it returns the ``<inproceedings>`` group.
    """
    groups = group_by_tag(repository, response)
    if not groups:
        return None
    return max(groups, key=lambda group: group.total_score)
