"""``gks shell`` — an interactive exploration REPL.

A thin terminal front-end over :class:`ExplorationSession`: type
keywords to search, colon-commands to steer.

::

    > karen mike john
    3 node(s) ...
    > :s 2                 set the threshold for subsequent queries
    > :mode relaxed        switch query semantics (strict |
                           probabilistic [P] | relaxed)
    > :di                  show the current step's insights
    > :refine 1            apply refinement #1
    > :drill               re-query with the top DI keywords
    > :explain 0           rank arithmetic of result #0
    > :snippet 0           XML chunk of result #0
    > :back                undo the last step
    > :history             the session transcript
    > :quit
"""

from __future__ import annotations

from typing import Callable, TextIO

from repro.core.engine import GKSEngine
from repro.core.session import ExplorationSession
from repro.errors import GKSError


class Shell:
    """The REPL logic, separated from I/O for testability."""

    def __init__(self, engine: GKSEngine, out: Callable[[str], None]) -> None:
        self.engine = engine
        self.session = ExplorationSession(engine)
        self.out = out
        self.s = 1
        self.limit = 8
        self.mode = engine.config.mode
        self.threshold = engine.config.threshold
        self.running = True

    # ------------------------------------------------------------------
    def handle(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        if line.startswith(":"):
            self._command(line[1:])
        else:
            self._query(line)

    def _query(self, text: str) -> None:
        try:
            step = self.session.run(text, s=self.s, mode=self.mode,
                                    threshold=self.threshold)
        except GKSError as error:
            self.out(f"error: {error}")
            return
        self._show_results(step)

    def _show_results(self, step) -> None:
        response = step.response
        semantics = (f", mode={response.semantics.mode}"
                     if response.semantics is not None else "")
        self.out(f"{len(response)} node(s) for {response.query}  "
                 f"[{response.profile.seconds * 1000:.1f} ms{semantics}]")
        for position, node in enumerate(response.top(self.limit)):
            line = self.engine.describe(node)
            if node.probability is not None:
                line += f"  p={node.probability:.4f}"
            if node.relaxation is not None:
                line += f"  [{node.relaxation.describe()}]"
            self.out(f"  [{position}] {line}")
        if len(response) > self.limit:
            self.out(f"  ... {len(response) - self.limit} more")

    # ------------------------------------------------------------------
    def _command(self, body: str) -> None:
        parts = body.split()
        name, arguments = parts[0], parts[1:]
        handler = getattr(self, f"_cmd_{name}", None)
        if handler is None:
            self.out(f"unknown command :{name} (try :help)")
            return
        try:
            handler(arguments)
        except GKSError as error:
            self.out(f"error: {error}")
        except (ValueError, IndexError) as error:
            self.out(f"error: {error}")

    def _cmd_help(self, arguments) -> None:
        self.out("commands: :s N  :mode M [P]  :di  :refine N  :drill  "
                 ":explain N  :snippet N  :back  :history  :stats  :quit")

    def _cmd_s(self, arguments) -> None:
        self.s = max(1, int(arguments[0]))
        self.out(f"s = {self.s}")

    def _cmd_mode(self, arguments) -> None:
        """``:mode strict | probabilistic [P] | relaxed`` — switch the
        query semantics for subsequent queries."""
        from repro.core.config import MODES

        if not arguments:
            threshold = (f" >= {self.threshold:g}"
                         if self.mode == "probabilistic" else "")
            self.out(f"mode = {self.mode}{threshold}")
            return
        from repro.errors import ConfigError

        mode = arguments[0]
        if mode not in MODES:
            raise ConfigError(f"unknown mode {mode!r} "
                              f"(one of {', '.join(sorted(MODES))})")
        self.mode = mode
        if len(arguments) > 1:
            self.threshold = float(arguments[1])
        if mode == "probabilistic" \
                and self.engine.config.mode != "probabilistic":
            self.out("note: this engine was opened without "
                     "mode='probabilistic'; probabilistic queries will "
                     "be rejected until it is reopened with compiled "
                     "probability tables")
        threshold = (f" >= {self.threshold:g}"
                     if mode == "probabilistic" else "")
        self.out(f"mode = {self.mode}{threshold}")

    def _cmd_di(self, arguments) -> None:
        step = self.session.current
        if not step.insights.insights:
            self.out("no insights for this step")
            return
        for insight in step.insights:
            self.out(f"  {insight.render()}  "
                     f"weight={insight.weight:.2f}")
        for position, refinement in enumerate(step.refinements):
            self.out(f"  refine[{position}] "
                     f"({refinement.kind.value}) "
                     f"{' '.join(refinement.keywords)}")

    def _cmd_refine(self, arguments) -> None:
        choice = int(arguments[0]) if arguments else 0
        step = self.session.refine(choice)
        self._show_results(step)

    def _cmd_drill(self, arguments) -> None:
        step = self.session.drill_down()
        self._show_results(step)

    def _cmd_explain(self, arguments) -> None:
        node = self._result(int(arguments[0]) if arguments else 0)
        self.out(self.engine.explain(node))

    def _cmd_snippet(self, arguments) -> None:
        node = self._result(int(arguments[0]) if arguments else 0)
        self.out(self.engine.highlighted_snippet(
            node, self.session.current.query))

    def _cmd_back(self, arguments) -> None:
        step = self.session.back()
        self._show_results(step)

    def _cmd_history(self, arguments) -> None:
        self.out(self.session.transcript())

    def _cmd_stats(self, arguments) -> None:
        """Session observability: searches, cache, slow queries."""
        searches = self.engine.metrics_registry.counter(
            "gks_searches_total").total()
        info = self.engine.cache_info()
        self.out(f"searches: {searches:.0f}  "
                 f"cache: {info['hits']} hit(s) / {info['misses']} "
                 f"miss(es) / {info['evictions']} eviction(s), "
                 f"{info['size']}/{info['capacity']} entries")
        slow = self.engine.slow_queries()
        threshold_ms = self.engine.slow_log.threshold_s * 1000
        self.out(f"slow queries (>= {threshold_ms:.0f} ms): {len(slow)}")
        for entry in slow:
            self.out(f"  {entry.render()}")

    def _cmd_quit(self, arguments) -> None:
        self.running = False

    def _result(self, position: int):
        nodes = self.session.current.response.nodes
        if not 0 <= position < len(nodes):
            raise IndexError(f"result {position} out of range "
                             f"(0..{len(nodes) - 1})")
        return nodes[position]


def run_shell(engine: GKSEngine, stdin: TextIO,
              write: Callable[[str], None],
              prompt: str = "> ") -> None:
    """Drive a :class:`Shell` from a text stream (stdin or a test)."""
    shell = Shell(engine, write)
    write("GKS shell — keywords to search, :help for commands")
    while shell.running:
        write(prompt)
        line = stdin.readline()
        if not line:
            break
        shell.handle(line)
