"""Inverted index for text keywords and element names (paper §2.4).

For each unique keyword appearing in the repository — after stop-word
removal and stemming — the index keeps a sorted list of the Dewey ids of
the elements that directly contain it (Table 3).  Element tag names are
indexed the same way (queries such as QM2 search for the tags ``country``
and ``name``), flagged separately so statistics can tell them apart.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, Mapping

from repro.index.postings import PostingList, verify_sorted
from repro.xmltree.dewey import Dewey


class InvertedIndex:
    """Keyword → sorted Dewey posting list."""

    def __init__(self) -> None:
        self._postings: dict[str, PostingList] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, keyword: str, dewey: Dewey) -> None:
        """Post *keyword* at *dewey*.

        The builder emits postings in document order, so appends dominate;
        the rare out-of-order posting (mixed content whose trailing text is
        seen after the element's children) is insorted, and duplicates
        (same keyword twice in one element) collapse to a single entry.
        """
        posting_list = self._postings.setdefault(keyword, [])
        if not posting_list or posting_list[-1] < dewey:
            posting_list.append(dewey)
            return
        if posting_list[-1] == dewey:
            return
        position = bisect_left(posting_list, dewey)
        if position >= len(posting_list) or posting_list[position] != dewey:
            posting_list.insert(position, dewey)

    def add_all(self, keywords: Iterable[str], dewey: Dewey) -> None:
        for keyword in keywords:
            self.add(keyword, dewey)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Iterable[Dewey]]
                     ) -> "InvertedIndex":
        """Rebuild an index from stored data (posting lists re-sorted)."""
        index = cls()
        for keyword, deweys in mapping.items():
            index._postings[keyword] = sorted(set(map(tuple, deweys)))
        return index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> PostingList:
        """The sorted posting list ``S_i`` for *keyword* (empty if absent)."""
        return self._postings.get(keyword, [])

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def document_frequency(self, keyword: str) -> int:
        return len(self._postings.get(keyword, ()))

    @property
    def total_postings(self) -> int:
        return sum(len(lst) for lst in self._postings.values())

    def items(self) -> Iterator[tuple[str, PostingList]]:
        yield from self._postings.items()

    def check_integrity(self) -> bool:
        """True when every posting list is strictly sorted (tests/storage)."""
        return all(verify_sorted(lst) for lst in self._postings.values())
