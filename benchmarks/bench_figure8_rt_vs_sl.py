"""E3 — Figure 8: response time vs merged-list size |SL| (n = 8 fixed).

The paper: on NASA and SwissProt, response time grows *linearly* with
|SL| for fixed n and d (21.5–139 ms on their hardware).  We reproduce the
series on the synthetic corpora and check the linear shape via the
Pearson correlation between |SL| and time.
"""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.core.search import search
from repro.eval.reporting import render_series
from repro.eval.runner import engine_for, figure8_series, queries_for_figure8


@pytest.mark.parametrize("dataset", ["nasa", "swissprot"])
def test_search_speed_fixed_n(dataset, benchmark):
    """Benchmark one representative n=8 query per corpus."""
    engine = engine_for(dataset, scale=2)
    queries = queries_for_figure8(engine.index, n=8)
    assert queries, "frequency ladder too short"
    query = queries[0]
    response = benchmark(lambda: search(engine.index, query))
    assert response.profile.merged_list_size > 0


@pytest.mark.parametrize("dataset", ["nasa", "swissprot"])
def test_figure8_series(dataset, results_writer, benchmark):
    points = benchmark.pedantic(
        lambda: figure8_series(dataset, scale=2), rounds=1, iterations=1)
    assert len(points) >= 3
    from repro.eval.figures import render_scatter

    results_writer(f"figure8_{dataset}", render_series(
        f"Figure 8 — response time vs |SL| ({dataset}, n=8)",
        [(sl, f"{ms:.2f}") for sl, ms in points],
        x_label="|SL|", y_label="RT (ms)") + "\n\n" + render_scatter(
        "RT vs |SL|", [(float(sl), ms) for sl, ms in points],
        x_label="|SL|", y_label="ms"))

    # shape check: strong positive linear correlation
    xs = [float(sl) for sl, _ in points]
    ys = [ms for _, ms in points]
    correlation = _pearson(xs, ys)
    assert correlation > 0.6, f"RT not increasing with |SL|: {points}"


def _pearson(xs, ys):
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs) ** 0.5
    var_y = sum((y - mean_y) ** 2 for y in ys) ** 0.5
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y)
