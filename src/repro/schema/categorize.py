"""Schema-level node categorization (the paper's §2.2 future-work note).

Instance-level categorization (``repro.index.categorize``) classifies
every element by its own subtree; a single-author DBLP ``<article>``
therefore lands in *connecting* while its siblings are *entities* — the
anomaly the paper points out for SIGMOD Record's 447 extra CNs (§7.2).

Schema-level categorization classifies element *types* instead, using
the inferred schema's multiplicities:

* **AN type** — may carry text, never has element children, and never
  repeats under its parent type;
* **RN type** — repeats under its parent type somewhere in the corpus;
* **EN type** — has a qualifying AN-type descendant (reachable without
  crossing an RN type) and a repeating group whose LCA relates as in
  Def 2.1.3;
* **CN type** — everything else.

Every instance then inherits its type's category, which smooths the
missing-element anomaly: the single-author article counts as an entity
because articles *as a type* have repeating authors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.categorize import NodeCategory
from repro.schema.inference import ElementType, Schema, TagPath
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository
from repro.xmltree.dewey import Dewey


@dataclass(frozen=True)
class TypeCategory:
    """Categorization of one element type."""

    path: TagPath
    category: NodeCategory
    is_repeating: bool


def categorize_schema(schema: Schema) -> dict[TagPath, TypeCategory]:
    """Assign a category to every element type of *schema*."""
    # Pass 1: repeatability of each type under its parent type.
    repeatable: dict[TagPath, bool] = {}
    for element_type in schema:
        path = element_type.path
        if len(path) == 1:
            repeatable[path] = False
            continue
        parent = schema.type_of(path[:-1])
        repeatable[path] = bool(parent
                                and parent.is_repeatable_child(path[-1]))

    # Pass 2: attribute shape per type.
    def is_attribute_type(element_type: ElementType) -> bool:
        return (element_type.has_text
                and not element_type.child_multiplicity
                and not repeatable[element_type.path])

    # Pass 3: qualifying attribute / repeating group reachability, bottom
    # up over the path forest.
    has_qual_attr: dict[TagPath, bool] = {}
    has_group: dict[TagPath, bool] = {}
    is_entity: dict[TagPath, bool] = {}

    for path in sorted(schema.types, key=len, reverse=True):
        element_type = schema.types[path]
        qual_children: set[str] = set()
        group_children: set[str] = set()
        own_group = False
        for tag in element_type.child_types():
            child_path = path + (tag,)
            child_type = schema.type_of(child_path)
            if child_type is None:
                continue
            child_repeats = element_type.is_repeatable_child(tag)
            if child_repeats:
                own_group = True
                group_children.add(tag)
            elif (is_attribute_type(child_type)
                  or has_qual_attr.get(child_path, False)):
                qual_children.add(tag)
            if has_group.get(child_path, False):
                group_children.add(tag)
        has_qual_attr[path] = bool(qual_children)
        has_group[path] = own_group or bool(group_children)
        is_entity[path] = bool(qual_children) and (
            own_group or any(g != a for g in group_children
                             for a in qual_children))

    # Final categories.
    categories: dict[TagPath, TypeCategory] = {}
    for element_type in schema:
        path = element_type.path
        if is_entity[path]:
            category = NodeCategory.ENTITY
        elif repeatable[path]:
            category = NodeCategory.REPEATING
        elif is_attribute_type(element_type):
            category = NodeCategory.ATTRIBUTE
        else:
            category = NodeCategory.CONNECTING
        categories[path] = TypeCategory(path=path, category=category,
                                        is_repeating=repeatable[path])
    return categories


def categorize_by_schema(repository: Repository,
                         schema: Schema | None = None
                         ) -> dict[Dewey, TypeCategory]:
    """Instance map Dewey → category inherited from the element's type."""
    from repro.schema.inference import infer_schema

    if schema is None:
        schema = infer_schema(repository)
    type_categories = categorize_schema(schema)

    result: dict[Dewey, TypeCategory] = {}
    for document in repository:
        _assign(document.root, (document.root.tag,), type_categories,
                result)
    return result


def _assign(node: XMLNode, path: TagPath,
            type_categories: dict[TagPath, TypeCategory],
            result: dict[Dewey, TypeCategory]) -> None:
    category = type_categories.get(path)
    if category is not None:
        result[node.dewey] = category
    for child in node.children:
        _assign(child, path + (child.tag,), type_categories, result)


def compare_with_instance_level(repository: Repository
                                ) -> dict[str, int]:
    """How often schema- and instance-level categorization disagree.

    Returns counters: total nodes, agreements, and per-kind flips (the
    interesting one being CN→EN — the missing-element smoothing).
    """
    from repro.index.categorize import categorize_tree

    schema_map = categorize_by_schema(repository)
    counters = {"total": 0, "agree": 0, "promoted_to_entity": 0,
                "promoted_to_repeating": 0, "other_flips": 0}
    for document in repository:
        instance_map = categorize_tree(document.root)
        for dewey, record in instance_map.items():
            by_schema = schema_map.get(dewey)
            if by_schema is None:
                continue
            counters["total"] += 1
            if by_schema.category is record.category:
                counters["agree"] += 1
            elif by_schema.category is NodeCategory.ENTITY:
                # the missing-element smoothing: e.g. a single-author
                # article inherits the entity-hood of its type
                counters["promoted_to_entity"] += 1
            elif by_schema.category is NodeCategory.REPEATING:
                # an only-child of a repeatable type (lone <author>)
                counters["promoted_to_repeating"] += 1
            else:
                counters["other_flips"] += 1
    return counters
