"""Syndicated-mirror corpus: many sites republishing a shared pool.

The workload the DAG codec is built for (PAPERS.md: Böttcher et al.,
*Efficient XML Keyword Search based on DAG-Compression*): a federation
of mirror sites each republishes records drawn from one shared pool —
think RSS aggregators, package-index mirrors or OAI-PMH harvesters.
Every occurrence of a record is the *same subtree verbatim* (that is
what syndication means), so the corpus-level redundancy grows linearly
with the number of mirrors while the distinct content stays fixed.

Generic stream compressors cannot exploit this: occurrences of one
record sit megabytes apart, far beyond a 32 KB deflate window.  The
``varint-dag`` codec stores each distinct record subtree once and each
occurrence as a single front-coded Dewey prefix, so its size tracks
the *pool*, not the mirror count.

``scale`` grows both the pool (``40·scale`` records) and the mirror
count (``4 + 2·scale`` sites); each site syndicates a seeded sample of
60–90 % of the pool plus a handful of site-local announcements so not
everything is shared.
"""

from __future__ import annotations

from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository

_TOPICS = ("databases", "compression", "retrieval", "networks",
           "storage", "indexing", "streams", "graphs")
_LICENSES = ("cc-by", "cc-by-sa", "mit", "public-domain")


def _record_blueprint(synth: Synth, number: int) -> dict:
    """One pool record; every mirror renders it identically."""
    return {
        "guid": f"rec-{number:05d}",
        "title": synth.title(),
        "summary": synth.sentence(synth.int_between(8, 16)),
        "author": synth.pick(("rivera", "tanaka", "osei", "lindqvist",
                              "moreau", "haddad", "novak", "okafor")),
        "year": synth.year(1998, 2014),
        "license": synth.pick(_LICENSES),
        "topics": sorted(synth.sample(_TOPICS,
                                      synth.int_between(2, 4))),
    }


def _render_record(channel: XMLNode, blueprint: dict) -> None:
    record = channel.add_child("record")
    record.add_child("guid", text=blueprint["guid"])
    record.add_child("title", text=blueprint["title"])
    record.add_child("summary", text=blueprint["summary"])
    record.add_child("author", text=blueprint["author"])
    record.add_child("year", text=blueprint["year"])
    record.add_child("license", text=blueprint["license"])
    for topic in blueprint["topics"]:
        record.add_child("topic", text=topic)


def generate_mirrors(scale: int = 1, seed: int = 0) -> Repository:
    """Build the mirror federation: one document per site."""
    synth = Synth(seed ^ 0x31AA05)
    pool = [_record_blueprint(synth, number)
            for number in range(40 * scale)]
    repository = Repository()
    for site in range(4 + 2 * scale):
        root = XMLNode("site", (0,))
        root.add_child("name", text=f"mirror-{site:03d}")
        root.add_child("refreshed", text=synth.year(2010, 2014))
        channel = root.add_child("channel")
        keep = max(1, (len(pool) * synth.int_between(60, 90)) // 100)
        chosen = sorted(synth.sample(range(len(pool)), keep))
        for number in chosen:
            _render_record(channel, pool[number])
        local = root.add_child("local")
        for _ in range(synth.int_between(2, 5)):
            note = local.add_child("announcement")
            note.add_child("title", text=synth.title())
            note.add_child("body",
                           text=synth.sentence(synth.int_between(6, 12)))
        repository.add_root(root, name=f"mirror-{site:03d}")
    return repository
