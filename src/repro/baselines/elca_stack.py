"""Stack-based ELCA — the XRank DIL-style algorithm (paper ref [7]).

The classic one-pass ELCA computation: sweep the merged occurrence list
in document order while maintaining a stack that mirrors the current
root-to-node path.  Each stack frame carries two bit sets per query keyword:

* ``total[k]`` — any occurrence of k in my subtree;
* ``available[k]`` — an occurrence of k in my subtree that is not inside
  any *all-keyword* descendant (such occurrences are "claimed" whether or
  not that descendant is itself an ELCA — exclusivity is defined against
  all-keyword nodes, not against ELCA nodes).

A popping frame is an ELCA iff all ``available`` bits are set.  Merging
upward: ``total`` always propagates; ``available`` propagates only when
the child is *not* an all-keyword node (otherwise the child claims
everything beneath it).

This reproduces the exclusivity semantics exactly and is cross-validated
against both the closure-based :func:`repro.baselines.elca.elca` and the
brute-force oracle.  Complexity: O(d·|SL|) stack operations.
"""

from __future__ import annotations

from repro.baselines.lca import posting_lists
from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.index.postings import merge_posting_lists
from repro.xmltree.dewey import Dewey


class _Frame:
    __slots__ = ("dewey", "total", "available")

    def __init__(self, dewey: Dewey, keyword_count: int) -> None:
        self.dewey = dewey
        self.total = [False] * keyword_count
        self.available = [False] * keyword_count


def elca_stack(index: GKSIndex, query: Query) -> list[Dewey]:
    """ELCA nodes via the Dewey-stack sweep, in document order."""
    lists = posting_lists(index, query)
    if any(not postings for postings in lists):
        return []
    keyword_count = len(lists)
    merged = merge_posting_lists(lists)

    stack: list[_Frame] = []
    results: list[Dewey] = []

    for entry in merged:
        _align_stack(stack, entry.dewey, keyword_count, results)
        stack[-1].total[entry.keyword] = True
        stack[-1].available[entry.keyword] = True

    while stack:
        _pop(stack, results)
    results.sort()
    return results


def _align_stack(stack: list[_Frame], dewey: Dewey, keyword_count: int,
                 results: list[Dewey]) -> None:
    """Pop frames outside *dewey*'s ancestor chain, push the rest of it."""
    # length of the common prefix between the stack path and dewey
    keep = 0
    for frame in stack:
        length = len(frame.dewey)
        if length <= len(dewey) and frame.dewey == dewey[:length]:
            keep += 1
        else:
            break
    while len(stack) > keep:
        _pop(stack, results)
    # push the remaining ancestors of dewey (and dewey itself)
    start = stack[-1].dewey if stack else None
    first_new = len(start) + 1 if start is not None else 1
    for length in range(first_new, len(dewey) + 1):
        stack.append(_Frame(dewey[:length], keyword_count))


def _pop(stack: list[_Frame], results: list[Dewey]) -> None:
    frame = stack.pop()
    is_all_keyword = all(frame.total)
    if all(frame.available):
        results.append(frame.dewey)
    if not stack:
        return
    parent = stack[-1]
    for position, flag in enumerate(frame.total):
        if flag:
            parent.total[position] = True
    if not is_all_keyword:
        # only a non-all-keyword child leaves its occurrences available
        for position, flag in enumerate(frame.available):
            if flag:
                parent.available[position] = True
