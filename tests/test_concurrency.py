"""Concurrency sanitizer suite: C-rules, lock monitor, race harness.

Static half: every C-rule gets a positive, a negative and a suppression
fixture, plus the suppression-interaction cases (one line firing two
rules, partially and fully waived).  Runtime half: the
:class:`~repro.obs.locks.LockMonitor` must report the seeded lock-order
inversion with both witness stacks, the race harness must catch the
seeded check-then-act cache race, and the real serving/durability
workloads must come out clean under both instruments.
"""

from __future__ import annotations

import json
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis import collect_locks
from repro.analysis.lint import ModuleInfo, lint_modules
from repro.cli import main
from repro.core.config import EngineConfig, Texts
from repro.core.engine import GKSEngine
from repro.errors import ValidationError
from repro.obs.locks import (InstrumentedLock, LockMonitor, monitoring,
                             new_lock, new_rlock)
from repro.testing.race import (LockOrderInversion, PreemptingEngine,
                                RaceHarness, RacyCache,
                                drive_cache_workload,
                                drive_durable_workload,
                                drive_swap_workload)

pytestmark = [pytest.mark.analysis, pytest.mark.concurrency]

DOCS = (
    "<doc><item><name>apple banana</name><tag>cherry</tag></item>"
    "<item><name>banana date</name><tag>apple</tag></item></doc>",
    "<doc><item><name>cherry apple</name><tag>date</tag></item>"
    "<item><name>date banana</name><tag>cherry</tag></item></doc>",
)
QUERIES = ["apple", "banana", "cherry banana", "date"]


def module_from(tmp_path: Path, relative: str, source: str) -> ModuleInfo:
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return ModuleInfo.from_path(path)


def findings_for(tmp_path: Path, relative: str, source: str,
                 rule_id: str) -> list:
    module = module_from(tmp_path, relative, source)
    return [finding for finding in lint_modules([module])
            if finding.rule_id == rule_id]


def make_engine(**config_kwargs) -> GKSEngine:
    config = EngineConfig(**config_kwargs)
    return GKSEngine.open(Texts(DOCS), config=config)


# ----------------------------------------------------------------------
# C001 — no lock held across an engine call
# ----------------------------------------------------------------------
class TestC001:
    BROKER = """\
        class Broker:
            def run(self, query):
                with self._lock:
                    return self.engine.search(query)
    """

    def test_engine_call_under_lock_fires(self, tmp_path):
        findings = findings_for(tmp_path, "src/repro/serve/b.py",
                                self.BROKER, "C001")
        assert len(findings) == 1
        assert ".search()" in findings[0].message
        assert "_lock" in findings[0].message

    def test_call_after_release_is_clean(self, tmp_path):
        source = """\
            class Broker:
                def run(self, query):
                    with self._lock:
                        engine = self._engine
                    return engine.search(query)
        """
        assert findings_for(tmp_path, "src/repro/serve/b.py", source,
                            "C001") == []

    def test_non_engine_receiver_is_clean(self, tmp_path):
        # self._store.flush() under the mutation lock is the durable
        # engine's deliberate design, not a layering violation
        source = """\
            class Engine:
                def flush_all(self):
                    with self._mutation_lock:
                        self._store.flush(self._pending)
        """
        assert findings_for(tmp_path, "src/repro/core/e.py", source,
                            "C001") == []

    def test_every_engine_entry_point_detected(self, tmp_path):
        source = """\
            class Broker:
                def churn(self):
                    with self.state_lock:
                        self._engine.add_document("<d/>")
                        self._engine.flush()
                        self._engine.compact()
        """
        findings = findings_for(tmp_path, "src/repro/serve/b.py", source,
                                "C001")
        assert len(findings) == 3

    def test_tests_are_exempt(self, tmp_path):
        assert findings_for(tmp_path, "tests/test_b.py", self.BROKER,
                            "C001") == []

    def test_suppression(self, tmp_path):
        source = """\
            class Broker:
                def run(self, query):
                    with self._lock:
                        return self.engine.search(query)  # gks: ignore[C001]
        """
        assert findings_for(tmp_path, "src/repro/serve/b.py", source,
                            "C001") == []


# ----------------------------------------------------------------------
# C002 — guarded fields written outside their lock
# ----------------------------------------------------------------------
class TestC002:
    def test_unlocked_write_fires(self, tmp_path):
        source = """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = {}

                def clear(self):
                    self._items = {}
        """
        findings = findings_for(tmp_path, "src/repro/serve/c.py", source,
                                "C002")
        assert len(findings) == 1
        assert "_items" in findings[0].message
        assert "_lock" in findings[0].message

    def test_mutating_method_call_fires(self, tmp_path):
        source = """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = {}

                def evict(self, key):
                    self._items.pop(key, None)
        """
        assert len(findings_for(tmp_path, "src/repro/serve/c.py", source,
                                "C002")) == 1

    def test_write_under_lock_is_clean(self, tmp_path):
        source = """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = {}

                def store(self, key, value):
                    with self._lock:
                        self._items[key] = value
        """
        assert findings_for(tmp_path, "src/repro/serve/c.py", source,
                            "C002") == []

    def test_init_locked_suffix_and_holds_marker_exempt(self, tmp_path):
        source = """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = {}

                def _clear_locked(self):
                    self._items = {}

                def _reset(self):  # holds: _lock
                    self._items = {}
        """
        assert findings_for(tmp_path, "src/repro/serve/c.py", source,
                            "C002") == []

    def test_unguarded_class_is_ignored(self, tmp_path):
        source = """\
            import threading

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def clear(self):
                    self._items = {}
        """
        assert findings_for(tmp_path, "src/repro/serve/c.py", source,
                            "C002") == []

    def test_multiline_guards_annotation(self, tmp_path):
        source = """\
            import threading

            class Broker:
                def __init__(self):
                    # guards: _queued, _running
                    # guards: _draining
                    self._lock = threading.Lock()
                    self._queued = 0
                    self._draining = False

                def drain(self):
                    self._draining = True
        """
        findings = findings_for(tmp_path, "src/repro/serve/c.py", source,
                                "C002")
        assert len(findings) == 1
        assert "_draining" in findings[0].message

    def test_suppression(self, tmp_path):
        source = """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()  # guards: _items
                    self._items = {}

                def clear(self):
                    self._items = {}  # gks: ignore[C002]
        """
        assert findings_for(tmp_path, "src/repro/serve/c.py", source,
                            "C002") == []


# ----------------------------------------------------------------------
# Suppression interaction: one line, two C-rules
# ----------------------------------------------------------------------
class TestSuppressionInteraction:
    # `self._items = self.engine.search(q)` inside `with self._db_lock:`
    # fires C001 (engine call under a held lock) AND C002 (_items is
    # guarded by _cache_lock, which is not held)
    TEMPLATE = """\
        import threading

        class Broker:
            def __init__(self):
                self._cache_lock = threading.Lock()  # guards: _items
                self._db_lock = threading.Lock()
                self._items = None

            def refresh(self, q):
                with self._db_lock:
                    self._items = self.engine.search(q){marker}
    """

    def _ids(self, tmp_path, marker: str) -> list[str]:
        module = module_from(tmp_path, "src/repro/serve/m.py",
                             self.TEMPLATE.format(marker=marker))
        return sorted(finding.rule_id
                      for finding in lint_modules([module]))

    def test_both_rules_fire_unsuppressed(self, tmp_path):
        assert self._ids(tmp_path, "") == ["C001", "C002"]

    def test_partial_suppression_keeps_the_other_rule(self, tmp_path):
        assert self._ids(tmp_path, "  # gks: ignore[C001]") == ["C002"]

    def test_multi_rule_suppression_waives_both(self, tmp_path):
        assert self._ids(tmp_path, "  # gks: ignore[C001,C002]") == []

    def test_bare_ignore_waives_everything(self, tmp_path):
        assert self._ids(tmp_path, "  # gks: ignore") == []


# ----------------------------------------------------------------------
# C003 — unguarded module-level mutable state
# ----------------------------------------------------------------------
class TestC003:
    def test_unguarded_module_dict_fires(self, tmp_path):
        findings = findings_for(tmp_path, "src/repro/serve/registry.py",
                                "REGISTRY = {}\n", "C003")
        assert len(findings) == 1
        assert "REGISTRY" in findings[0].message

    def test_declared_guard_is_clean(self, tmp_path):
        source = "REGISTRY = {}  # guards: REGISTRY_LOCK\n"
        assert findings_for(tmp_path, "src/repro/serve/registry.py",
                            source, "C003") == []

    def test_dunder_and_constants_are_clean(self, tmp_path):
        source = '__all__ = ["a"]\nNAMES = ("x", "y")\nLIMIT = 3\n'
        assert findings_for(tmp_path, "src/repro/serve/registry.py",
                            source, "C003") == []

    def test_modules_outside_the_guarded_set_are_exempt(self, tmp_path):
        assert findings_for(tmp_path, "src/repro/core/registry.py",
                            "CACHE = {}\n", "C003") == []

    def test_wal_and_segments_are_covered(self, tmp_path):
        for relative in ("src/repro/index/wal.py",
                         "src/repro/index/segments.py"):
            assert len(findings_for(tmp_path, relative, "STATE = []\n",
                                    "C003")) == 1

    def test_suppression(self, tmp_path):
        source = "REGISTRY = {}  # gks: ignore[C003]\n"
        assert findings_for(tmp_path, "src/repro/serve/registry.py",
                            source, "C003") == []


# ----------------------------------------------------------------------
# Lock inventory
# ----------------------------------------------------------------------
class TestLockInventory:
    def test_collect_locks_reports_guards_and_with_sites(self, tmp_path):
        source = """\
            import threading
            from repro.obs.locks import new_lock

            GLOBAL_LOCK = threading.Lock()

            class Cache:
                def __init__(self):
                    self._lock = new_lock("test.cache")  # guards: _items
                    self._items = {}

                def store(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def load(self, key):
                    with self._lock:
                        return self._items.get(key)
        """
        module = module_from(tmp_path, "src/repro/serve/inv.py", source)
        sites = {site.owner: site for site in collect_locks([module])}
        assert sites["Cache._lock"].kind == "new_lock"
        assert sites["Cache._lock"].name == "test.cache"
        assert sites["Cache._lock"].guards == ("_items",)
        assert sites["Cache._lock"].with_sites == 2
        assert sites["GLOBAL_LOCK"].kind == "Lock"
        assert sites["GLOBAL_LOCK"].guards == ()

    def test_repo_inventory_names_the_serving_locks(self):
        modules = [ModuleInfo.from_path(path)
                   for path in sorted(Path("src").rglob("*.py"))]
        by_name = {site.name for site in collect_locks(modules)}
        assert {"serve.core", "engine.cache", "engine.mutation",
                "sharding.cache", "index.wal"} <= by_name

    def test_cli_locks_json(self, capsys):
        assert main(["lint", "--locks", "--json", "src/repro/serve"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        owners = {lock["owner"] for lock in report["locks"]}
        assert "ServerCore._lock" in owners


# ----------------------------------------------------------------------
# lint --json (machine output mirrors check-index --json)
# ----------------------------------------------------------------------
class TestLintJson:
    def test_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", "--json", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report == {"count": 0, "exit": 0, "findings": [],
                          "ok": True}

    def test_findings_carry_rule_and_location(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "serve" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("STATE = {}\n")
        assert main(["lint", "--json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False and report["count"] == 1
        finding = report["findings"][0]
        assert finding["rule"] == "C003"
        assert finding["line"] == 1
        assert finding["path"].endswith("bad.py")

    def test_output_is_stable(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "serve" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("A = {}\nB = []\n")
        main(["lint", "--json", str(tmp_path)])
        first = capsys.readouterr().out
        main(["lint", "--json", str(tmp_path)])
        assert capsys.readouterr().out == first


# ----------------------------------------------------------------------
# Runtime layer: instrumented locks and the order graph
# ----------------------------------------------------------------------
class TestLockMonitor:
    def test_uninstrumented_locks_are_raw_stdlib(self):
        assert isinstance(new_lock("a"), type(threading.Lock()))
        assert not isinstance(new_lock("a"), InstrumentedLock)

    def test_monitoring_wraps_and_counts(self):
        with monitoring() as monitor:
            lock = new_lock("m.lock")
            assert isinstance(lock, InstrumentedLock)
            with lock:
                assert lock.locked()
            with lock:
                pass
        assert monitor.acquisitions() == {"m.lock": 2}
        # outside the context, construction reverts to raw locks
        assert not isinstance(new_lock("m.lock"), InstrumentedLock)

    def test_rlock_reentrancy_records_no_self_edge(self):
        with monitoring() as monitor:
            lock = new_rlock("m.rlock")
            with lock:
                with lock:
                    pass
        assert monitor.edges() == []
        assert monitor.potential_deadlocks() == []

    def test_consistent_order_has_no_cycle(self):
        with monitoring() as monitor:
            a, b = new_lock("m.a"), new_lock("m.b")
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert [(edge.held, edge.acquired)
                for edge in monitor.edges()] == [("m.a", "m.b")]
        assert monitor.potential_deadlocks() == []

    def test_inversion_reported_with_both_witness_stacks(self):
        monitor = LockMonitor()
        fixture = LockOrderInversion(monitor)
        fixture.record_both_orders()
        reports = monitor.potential_deadlocks()
        assert len(reports) == 1
        report = reports[0]
        assert set(report.cycle) == {"fixture.a", "fixture.b"}
        assert len(report.edges) == 2
        for edge in report.edges:
            # both acquisition stacks captured, pointing into the fixture
            assert edge.held_stack and edge.acquired_stack
        rendered = report.render()
        assert "potential deadlock" in rendered
        assert "forward" in rendered and "backward" in rendered
        assert "race.py" in rendered

    def test_monitor_report_is_json_able(self):
        monitor = LockMonitor()
        LockOrderInversion(monitor).record_both_orders()
        report = monitor.report()
        json.dumps(report)  # must not raise
        assert report["potential_deadlocks"]
        assert "fixture.a -> fixture.b" in report["edges"]


# ----------------------------------------------------------------------
# Race harness
# ----------------------------------------------------------------------
class TestRaceHarness:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValidationError):
            RaceHarness(threads=1)
        with pytest.raises(ValidationError):
            RaceHarness(rounds=0)
        with pytest.raises(ValidationError):
            RaceHarness().run([])

    def test_catches_seeded_check_then_act_race(self):
        cache = RacyCache(capacity=16, gap_s=0.002)
        harness = RaceHarness(threads=4, rounds=3, iterations=8, seed=11)
        report = harness.run(
            [lambda rng: cache.get_or_compute(rng.randrange(3))],
            check=cache.violations)
        assert not report.ok
        assert any("check-then-act" in violation
                   for violation in report.violations)
        assert "violation" in report.render()

    def test_serialized_cache_passes_the_same_harness(self):
        cache = RacyCache(capacity=16, gap_s=0.002)
        lock = threading.Lock()

        def serialized(rng):
            with lock:
                cache.get_or_compute(rng.randrange(3))

        harness = RaceHarness(threads=4, rounds=3, iterations=8, seed=11)
        report = harness.run([serialized], check=cache.violations)
        assert report.ok, report.render()

    def test_exceptions_are_collected_not_fatal(self):
        def boom(rng):
            raise RuntimeError("seeded failure")

        report = RaceHarness(threads=2, rounds=1, iterations=2).run([boom])
        assert not report.ok
        assert len(report.exceptions) == 4
        assert "seeded failure" in report.exceptions[0][1]

    def test_preempting_engine_delegates(self):
        engine = make_engine()
        wrapped = PreemptingEngine(engine, gap_s=0.0)
        response = wrapped.search("apple")
        assert response.nodes == engine.search("apple").nodes
        assert wrapped.calls == 1
        assert wrapped.repository is engine.repository


# ----------------------------------------------------------------------
# The real serving/durability paths under the sanitizer
# ----------------------------------------------------------------------
class TestSanitizedWorkloads:
    HARNESS = dict(threads=4, rounds=2, iterations=12, seed=3)

    def test_engine_cache_path_is_clean(self):
        with monitoring() as monitor:
            engine = make_engine(cache_size=4)
            report = drive_cache_workload(engine, QUERIES,
                                          RaceHarness(**self.HARNESS))
        assert report.ok, report.render()
        assert monitor.potential_deadlocks() == []

    def test_swap_under_traffic_is_clean(self):
        with monitoring() as monitor:
            engine, spare = make_engine(), make_engine()
            with engine.serve(workers=4) as core:
                report = drive_swap_workload(
                    core, [engine, spare], RaceHarness(**self.HARNESS),
                    QUERIES)
        assert report.ok, report.render()
        assert monitor.potential_deadlocks() == []

    def test_durable_path_is_clean_and_orders_mutation_before_wal(
            self, tmp_path):
        with monitoring() as monitor:
            engine = make_engine(store_path=tmp_path / "store",
                                 memtable_docs=8)
            try:
                report = drive_durable_workload(
                    engine, RaceHarness(**self.HARNESS), QUERIES)
            finally:
                engine.close()
        assert report.ok, report.render()
        pairs = [(edge.held, edge.acquired) for edge in monitor.edges()]
        assert ("engine.mutation", "index.wal") in pairs
        assert monitor.potential_deadlocks() == []

    def test_sharded_index_merged_views_race_free(self):
        reference = make_engine(shards=2).index
        keywords = reference.inverted.vocabulary[:4]
        assert keywords, "fixture corpus produced no vocabulary"
        expected = {keyword: tuple(reference.postings(keyword))
                    for keyword in keywords}
        assert any(expected.values())  # the probe must compare real lists
        fresh = make_engine(shards=2).index

        def probe(rng):
            keyword = keywords[rng.randrange(len(keywords))]
            assert tuple(fresh.postings(keyword)) == expected[keyword]
            assert fresh.stats.documents == len(DOCS)
            assert keyword in fresh.inverted

        report = RaceHarness(threads=4, rounds=2, iterations=10).run(
            [probe])
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# `gks race` CLI
# ----------------------------------------------------------------------
class TestRaceCli:
    @pytest.fixture()
    def corpus(self, tmp_path):
        path = tmp_path / "corpus.xml"
        path.write_text(DOCS[0])
        return str(path)

    def test_clean_run_exits_zero(self, corpus, capsys):
        assert main(["race", corpus, "--scenario", "cache",
                     "--rounds", "1", "--iterations", "5"]) == 0
        captured = capsys.readouterr()
        assert "[cache]" in captured.out
        assert "no findings" in captured.err

    def test_json_report_shape(self, corpus, capsys):
        assert main(["race", corpus, "--scenario", "durable",
                     "--rounds", "1", "--iterations", "5",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["scenarios"]["durable"]["operations"] > 0
        assert ("engine.mutation -> index.wal"
                in report["lock_order"]["edges"])
        assert report["lock_order"]["potential_deadlocks"] == []
