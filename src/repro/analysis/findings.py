"""The lint report record: one :class:`Finding` per rule violation.

A finding pins a rule to a source position; findings render in the
classic compiler shape (``path:line: RULE severity: message``) so shells,
editors and CI annotators can all parse them.  Findings order by
``(path, line, rule_id)`` — the order ``gks lint`` prints them in.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Finding severities, most severe first.  Every severity is fatal to a
#: ``gks lint`` run (non-zero exit); the distinction exists for report
#: readers, not for gating.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position."""

    path: str
    line: int
    rule_id: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule_id} "
                f"{self.severity}: {self.message}")


def render_findings(findings: list[Finding]) -> str:
    """The full lint report, one line per finding, sorted."""
    return "\n".join(finding.render() for finding in sorted(findings))
