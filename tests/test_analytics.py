"""Tests for the analytics layer (facets, aggregation, histograms)."""

import pytest

from repro.analytics import (aggregate, facets, group_rank, histogram)
from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def dblp_engine():
    return GKSEngine(load_dataset("dblp"))


@pytest.fixture(scope="module")
def qd2_response(dblp_engine):
    return dblp_engine.search(
        '"Peter Buneman" "Wenfei Fan" "Scott Weinstein"', s=1)


class TestFacets:
    def test_year_facet_finds_2001(self, dblp_engine, qd2_response):
        report = facets(dblp_engine.repository, qd2_response, "year")
        assert report.column == "year"
        top = report.top(1)[0]
        assert top.value == "2001"  # the planted Example 2 year

    def test_counts_and_weights_consistent(self, dblp_engine,
                                           qd2_response):
        report = facets(dblp_engine.repository, qd2_response, "year")
        total = sum(bucket.count for bucket in report)
        assert total + report.missing == len(qd2_response.lce_nodes)
        for bucket in report:
            assert bucket.weight > 0

    def test_top_truncates(self, dblp_engine, qd2_response):
        report = facets(dblp_engine.repository, qd2_response, "year",
                        top=1)
        assert len(report.buckets) == 1

    def test_path_suffix_column(self, dblp_engine, qd2_response):
        by_tag = facets(dblp_engine.repository, qd2_response, "journal")
        by_path = facets(dblp_engine.repository, qd2_response,
                         ("article", "journal"))
        assert {b.value for b in by_path} <= {b.value for b in by_tag}

    def test_missing_column_counts(self, dblp_engine, qd2_response):
        report = facets(dblp_engine.repository, qd2_response,
                        "nonexistent_column")
        assert not report.buckets
        assert report.missing == len(qd2_response.lce_nodes)

    def test_engine_facade(self, dblp_engine, qd2_response):
        report = dblp_engine.facets(qd2_response, "year", top=3)
        assert len(report.buckets) <= 3

    def test_group_rank_ordering(self, dblp_engine, qd2_response):
        values = group_rank(dblp_engine.repository, qd2_response, "year")
        assert values[0] == "2001"


class TestAggregate:
    def test_year_statistics(self, dblp_engine, qd2_response):
        report = aggregate(dblp_engine.repository, qd2_response, "year")
        assert report.count > 0
        assert report.minimum <= report.mean <= report.maximum
        assert report.total == pytest.approx(
            report.mean * report.count)

    def test_non_numeric_column(self, dblp_engine, qd2_response):
        report = aggregate(dblp_engine.repository, qd2_response, "title")
        assert report.count == 0
        assert report.mean is None
        assert report.missing > 0

    def test_engine_facade(self, dblp_engine, qd2_response):
        report = dblp_engine.aggregate(qd2_response, "year")
        assert report.column == "year"


class TestHistogram:
    def test_bins_cover_range(self, dblp_engine):
        response = dblp_engine.search('"Prithviraj Banerjee"', s=1)
        bins = histogram(dblp_engine.repository, response, "year",
                         bins=4)
        assert len(bins) in (1, 4)
        assert sum(b.count for b in bins) > 0
        for left, right in zip(bins, bins[1:]):
            assert left.high == pytest.approx(right.low)

    def test_constant_column_single_bin(self, dblp_engine, qd2_response):
        # all trio articles carry year 2001
        tight = dblp_engine.search(
            '"Peter Buneman" "Wenfei Fan" "Scott Weinstein"', s=3)
        bins = histogram(dblp_engine.repository, tight, "year")
        assert len(bins) == 1
        assert bins[0].low == bins[0].high == 2001.0

    def test_invalid_bins_rejected(self, dblp_engine, qd2_response):
        with pytest.raises(ValueError):
            histogram(dblp_engine.repository, qd2_response, "year",
                      bins=0)

    def test_empty_when_no_numeric_values(self, dblp_engine,
                                          qd2_response):
        assert histogram(dblp_engine.repository, qd2_response,
                         "title") == []
