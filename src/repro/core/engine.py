"""The GKS system facade (paper Fig. 3).

One :class:`GKSEngine` owns the three modules of the architecture diagram —
Indexing Engine, Search Engine, Search Analysis Engine — behind a small
API::

    engine = GKSEngine.open([xml_text])
    response = engine.search('"Peter Buneman" "Wenfei Fan"', s=1)
    for node in response.top(5):
        print(node.score, engine.snippet(node.dewey))
    for insight in engine.insights(response):
        print(insight.render())
    for refinement in engine.refine(response):
        print(refinement.keywords)
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from pathlib import Path
from typing import Iterable

from repro.core.budget import SearchBudget
from repro.core.config import EngineConfig, Paths, SearchOptions, Texts
from repro.core.insights import (InsightReport, discover_insights,
                                 discover_recursive)
from repro.core.query import Query
from repro.core.refinement import Refinement, suggest
from repro.core.ranking import rank_node
from repro.core.results import GKSResponse, RankedNode, SemanticsInfo
from repro.core.search import Ranker, search
from repro.core.durable import build_unit, compose_serving, open_durable
from repro.errors import (ConfigError, SearchTimeout, StorageError,
                          ValidationError)
from repro.index.builder import GKSIndex, IndexBuilder
from repro.index.segments import PendingDocument, SegmentStore
from repro.index.sharding import ParallelIndexBuilder, ShardedIndex, shard_of
from repro.obs.locks import new_lock, new_rlock
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.stats import SlowQuery, SlowQueryLog
from repro.obs.trace import NullTracer, Span, Tracer
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.dewey import Dewey, format_dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.parser import RecoveryPolicy, parse_document
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_node


class GKSEngine:
    """Generic Keyword Search over one XML repository."""

    def __init__(self, repository: Repository,
                 analyzer: Analyzer | None = None,
                 index: GKSIndex | ShardedIndex | None = None,
                 index_tags: bool | None = None,
                 cache_size: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 slow_query_threshold_s: float = 0.5,
                 slow_log_capacity: int = 128,
                 trace_capacity: int = 32,
                 config: EngineConfig | None = None) -> None:
        if config is None:
            config = EngineConfig()
        # Explicit constructor arguments override the config record (the
        # legacy surface); everything unset falls back to the config.
        if analyzer is not None and analyzer is not config.analyzer:
            config = config.replace(analyzer=analyzer)
        if index_tags is not None and index_tags != config.index_tags:
            config = config.replace(index_tags=index_tags)
        if cache_size is not None and cache_size != config.cache_size:
            config = config.replace(cache_size=cache_size)
        self.config = config
        self.repository = repository
        self.analyzer = config.analyzer
        self.index_tags = config.index_tags
        # Observability: the shared metrics registry (process-global by
        # default), the slow-query ring buffer, and the recent-trace ring.
        self.metrics_registry = (metrics if metrics is not None
                                 else global_registry())
        self.slow_log = SlowQueryLog(threshold_s=slow_query_threshold_s,
                                     capacity=slow_log_capacity)
        self._recent_traces: deque[Span] = deque(maxlen=max(1,
                                                            trace_capacity))
        if index is None:
            index = self._build_index(repository, config)
        self.index = index
        # LRU response cache; keyed by (keywords, s, ranker); responses
        # are immutable so sharing them is safe.  Invalidated whenever
        # the corpus changes (add_document).  The lock makes the
        # pop/evict/insert sequences atomic — the serving layer runs
        # searches from a worker thread pool, and two threads evicting
        # the same oldest key would otherwise race into a KeyError.
        self._cache_size = max(0, config.cache_size)
        self._response_cache: dict = {}
        self._cache_lock = new_lock("engine.cache")  # guards: _response_cache
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        # Durable write path (attached by open() when config.store_path
        # is set).  The RLock serializes mutations — an add_document that
        # crosses the memtable threshold flushes inside the same hold.
        # guards: index, _generation, _pending, _durable_units
        self._mutation_lock = new_rlock("engine.mutation")
        self._mutation_listeners: list = []
        self._generation = 0
        self._store: SegmentStore | None = None
        self._durable_units: dict = {}
        self._pending: list[PendingDocument] = []
        # Relaxed-mode rewrite vocabulary, cached per serving generation
        # (the corpus walk is linear; redoing it per query would dominate
        # the rescue path).
        self._relax_vocab: tuple | None = None

    @staticmethod
    def _build_index(repository: Repository,
                     config: EngineConfig) -> GKSIndex | ShardedIndex:
        if config.shards > 1:
            index = ParallelIndexBuilder(
                analyzer=config.analyzer, index_tags=config.index_tags,
                shards=config.shards, workers=config.workers,
                strategy=config.shard_strategy).build(repository)
        else:
            builder = IndexBuilder(analyzer=config.analyzer,
                                   index_tags=config.index_tags)
            builder.add_repository(repository)
            index = builder.build()
        if config.mode == "probabilistic":
            from repro.semantics import attach_tables

            index = attach_tables(index, repository)
        return index

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, source, config: EngineConfig | None = None,
             **overrides) -> "GKSEngine":
        """The one engine factory: open *source* under *config*.

        *source* may be a :class:`Repository`, one XML text, one corpus
        path, or an iterable of texts/paths — strings whose first
        non-blank character is ``<`` are treated as XML text, everything
        else as a path; wrap the iterable in
        :class:`~repro.core.config.Texts` or
        :class:`~repro.core.config.Paths` to skip the sniffing.
        Keyword *overrides* are applied to the config
        (``GKSEngine.open(src, shards=4)``).

        With ``config.index_path`` set, a compatible persisted index is
        loaded instead of rebuilding; a missing, corrupted or
        incompatible file (different shard layout, analyzer or corpus)
        falls back to a rebuild and the cache is rewritten atomically —
        a cold cache is a slow start, never a failed one.

        With ``config.store_path`` set, the engine opens a durable
        segmented store there instead: an empty directory is initialised
        from a fresh build, an existing one is *recovered* — segments
        verified, appended documents re-parsed, the WAL tail re-applied
        — and ``add_document`` becomes crash-safe (write-ahead logged,
        flushed to immutable segments, compacted per shard).  Unlike the
        ``index_path`` cache, a corrupted or incompatible store raises
        :class:`~repro.errors.StorageError` rather than rebuilding:
        the store holds documents the source corpus does not, so
        silently starting over would be data loss.
        """
        if config is None:
            config = EngineConfig()
        if overrides:
            config = config.replace(**overrides)
        repository = _resolve_source(source, config)

        if config.store_path is not None:
            serving, store, durable_units, pending = open_durable(
                repository, config, cls._build_index)
            engine = cls(repository, index=serving, config=config)
            engine._store = store
            engine._durable_units = durable_units
            engine._pending = pending
            return engine

        index: GKSIndex | ShardedIndex | None = None
        if config.index_path is not None:
            from repro.index.storage import (describe_layout, load_index,
                                             save_index)

            try:
                loaded = load_index(config.index_path)
                on_disk_codec = describe_layout(config.index_path)["codec"]
            except StorageError:
                loaded = None  # unreadable cache: rebuild and rewrite
            if loaded is not None:
                from repro.semantics import has_prob_tables

                if (has_prob_tables(loaded)
                        and config.mode != "probabilistic"):
                    # A typed error, not a rebuild: the caller persisted
                    # probabilistic tables on purpose, and silently
                    # serving them strict would change query semantics.
                    raise ConfigError(
                        f"index at {config.index_path} carries "
                        "probabilistic tables but the engine mode is "
                        f"{config.mode!r}; open it with "
                        "EngineConfig(mode='probabilistic') or rebuild "
                        "the index cache")
            if (loaded is not None
                    and on_disk_codec == config.codec
                    and _index_compatible(loaded, repository, config)):
                index = loaded
        engine = cls(repository, index=index, config=config)
        if config.index_path is not None and index is None:
            save_index(engine.index, config.index_path,
                       codec=config.codec)
        return engine

    @classmethod
    def from_texts(cls, texts: Iterable[str],
                   analyzer: Analyzer = DEFAULT_ANALYZER,
                   index_tags: bool = True,
                   policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
                   config: EngineConfig | None = None) -> "GKSEngine":
        """Thin shim over :meth:`open` for raw XML strings."""
        if config is None:
            config = EngineConfig(analyzer=analyzer, index_tags=index_tags,
                                  recovery=policy)
        return cls.open(Texts(texts), config=config)

    @classmethod
    def from_paths(cls, paths: Iterable[str | Path],
                   analyzer: Analyzer = DEFAULT_ANALYZER,
                   index_tags: bool = True,
                   policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
                   index_path: str | Path | None = None,
                   config: EngineConfig | None = None) -> "GKSEngine":
        """Thin shim over :meth:`open` for corpus files on disk."""
        if config is None:
            config = EngineConfig(analyzer=analyzer, index_tags=index_tags,
                                  recovery=policy, index_path=index_path)
        return cls.open(Paths(paths), config=config)

    # ------------------------------------------------------------------
    # Search Engine
    # ------------------------------------------------------------------
    def parse_query(self, raw: str, s: int = 1) -> Query:
        return Query.parse(raw, s=s, analyzer=self.analyzer)

    def _resolve_options(self, options: SearchOptions | None, *,
                         s: int | None, use_cache: bool | None,
                         strict_deadline: bool | None,
                         budget: SearchBudget | None,
                         mode: str | None = None,
                         threshold: float | None = None):
        """Fold a :class:`SearchOptions` into explicit keyword args.

        Precedence: explicit keyword argument > ``options`` field >
        engine config / built-in default.  ``options.deadline_s``
        becomes a :class:`SearchBudget` only when the caller brought no
        budget of their own.
        """
        if options is not None:
            if s is None:
                s = options.s
            if use_cache is None:
                use_cache = options.use_cache
            if strict_deadline is None:
                strict_deadline = options.strict_deadline
            if budget is None and options.deadline_s is not None:
                budget = SearchBudget(deadline_s=options.deadline_s)
            if mode is None:
                mode = options.mode
            if threshold is None:
                threshold = options.threshold
        if use_cache is None:
            use_cache = True
        if strict_deadline is None:
            strict_deadline = False
        if budget is None:
            budget = self.config.budget
        if mode is None:
            mode = self.config.mode
        if threshold is None:
            threshold = self.config.threshold
        return s, use_cache, strict_deadline, budget, mode, threshold

    def search(self, query: str | Query, s: int | None = None, *,
               ranker: Ranker | None = None,
               use_cache: bool | None = None,
               budget: SearchBudget | None = None,
               strict_deadline: bool | None = None,
               options: SearchOptions | None = None,
               mode: str | None = None,
               threshold: float | None = None,
               tracer: Tracer | NullTracer | None = None,
               request_id: str | None = None) -> GKSResponse:
        """Run a keyword query; ``s`` defaults to ``config.s``.

        Tuning parameters beyond ``s`` are keyword-only; unset ones fall
        back first to *options* (a frozen
        :class:`~repro.core.config.SearchOptions` — the same record the
        broker and HTTP surface accept), then to the engine's
        :class:`EngineConfig` (``ranker``, ``budget``).  Responses are
        LRU-cached per (keywords, s, ranker); pass ``use_cache=False``
        to force a fresh run (timing harnesses do).

        A :class:`SearchBudget` bounds the query's cost; an exhausted
        budget yields a partial response flagged ``degraded=True``.  With
        ``strict_deadline=True`` a deadline trip raises
        :class:`SearchTimeout` instead (resource-cap trips — ``max_sl``,
        ``max_nodes`` — still degrade gracefully).  Budgeted responses
        bypass the cache in both directions: a partial answer must never
        be served to an unbudgeted caller, nor vice versa.

        Pass a :class:`~repro.obs.trace.Tracer` to capture the query's
        span tree (also retained in :meth:`recent_traces`); every search,
        traced or not, records into the engine's metrics registry and
        slow-query log and returns a response with populated
        :class:`~repro.obs.stats.QueryStats`.

        ``request_id`` is the serving-side correlation id (minted at
        :class:`~repro.serve.core.ServerCore` admission): when given it
        is stamped on the response's :class:`QueryStats`, the slow-query
        log entry and the root span, so one id joins the HTTP envelope,
        the span tree and the diagnostics for the same query.

        ``mode`` selects the query semantics (``repro.semantics``):
        ``"strict"`` is the classic pipeline, ``"probabilistic"``
        evaluates p-document probabilities (filtered by ``threshold``),
        ``"relaxed"`` rescues an empty strict result with penalty-ranked
        single-edit rewrites.  Unset, both fall back to *options* then
        ``EngineConfig``.  Non-strict responses never touch the LRU
        cache, so strict output stays byte-identical.
        """
        s, use_cache, strict_deadline, budget, mode, threshold = (
            self._resolve_options(
                options, s=s, use_cache=use_cache,
                strict_deadline=strict_deadline, budget=budget,
                mode=mode, threshold=threshold))
        if ranker is None:
            ranker = self.config.ranker
        if isinstance(query, str):
            query = self.parse_query(query,
                                     s=s if s is not None else self.config.s)
        elif s is not None:
            query = query.with_s(s)
        if mode != "strict":
            return self._semantic_search(
                query, mode=mode, threshold=threshold, ranker=ranker,
                budget=budget, strict_deadline=strict_deadline,
                tracer=tracer, request_id=request_id)

        use_cache = use_cache and budget is None
        # Keyed on the ranker object itself (not id(): ids are recycled
        # after GC, which can silently serve another ranker's response).
        cache_key = (query.keywords, query.effective_s, ranker)
        if use_cache:
            with self._cache_lock:
                cached = self._response_cache.pop(cache_key, None)
                if cached is not None:
                    # re-insert to refresh recency: true LRU, not FIFO
                    self._response_cache[cache_key] = cached
                    self._count_cache("hits")
                else:
                    self._count_cache("misses")
            if cached is not None:
                # the hit reflects *this* request's correlation id, not
                # the one that originally populated the cache
                hit_stats = replace(cached.stats.as_cache_hit(),
                                    request_id=request_id)
                hit = replace(cached, stats=hit_stats)
                self._record_search(hit, tracer=None)
                return hit
        # One read of the index reference: a concurrent add_document
        # swaps in a new immutable snapshot, and this search must run
        # wholly on whichever snapshot it captured.
        index = self.index
        generation = self._generation
        if isinstance(index, ShardedIndex):
            from repro.core.scatter import sharded_search

            response = sharded_search(index, query, ranker=ranker,
                                      budget=budget, tracer=tracer)
        else:
            response = search(index, query, ranker=ranker,
                              budget=budget, tracer=tracer)
        response = self._stamp_request_id(response, request_id, tracer)
        self._record_search(response, tracer=tracer)
        if (strict_deadline and response.degraded
                and response.degradation.reason == "deadline"):
            raise SearchTimeout(
                f"query {query} exceeded its deadline: "
                f"{response.degradation.render()}",
                report=response.degradation)
        # the generation guard keeps a response computed on a pre-swap
        # snapshot from re-entering the cache after invalidation
        if use_cache and self._cache_size and generation == self._generation:
            with self._cache_lock:
                if (cache_key not in self._response_cache
                        and len(self._response_cache) >= self._cache_size):
                    # drop the least recently used entry (dict preserves
                    # insertion order; hits re-insert at the end)
                    oldest = next(iter(self._response_cache))
                    del self._response_cache[oldest]
                    self._count_cache("evictions")
                self._response_cache[cache_key] = response
        return response

    def _relaxation_vocabulary(self):
        """The relaxed-mode rewrite vocabulary for the current corpus."""
        from repro.semantics import relaxation_vocabulary

        cached = self._relax_vocab
        generation = self._generation
        if cached is not None and cached[0] == generation:
            return cached[1]
        vocabulary = relaxation_vocabulary(self.repository, self.analyzer)
        self._relax_vocab = (generation, vocabulary)
        return vocabulary

    def _semantic_search(self, query: Query, *, mode: str,
                         threshold: float, ranker: Ranker,
                         budget: SearchBudget | None,
                         strict_deadline: bool,
                         tracer: Tracer | NullTracer | None,
                         request_id: str | None) -> GKSResponse:
        """Dispatch a non-strict query through ``repro.semantics``.

        Deferred import: semantics sits beside core in the layer DAG but
        this facade must not pay for it on the strict path.  Non-strict
        responses bypass the LRU cache entirely (in both directions).
        Note the relaxed flow runs strict sub-searches through
        :meth:`search`, so ``gks_searches_total`` counts them too —
        documented in DESIGN.md §5.10.
        """
        if mode == "probabilistic":
            if self.config.mode != "probabilistic":
                raise ConfigError(
                    "probabilistic query on a non-probabilistic engine: "
                    "open it with EngineConfig(mode='probabilistic') so "
                    "the index carries compiled probability tables")
            from repro.semantics import probabilistic_search

            response = probabilistic_search(
                self.index, query, threshold=threshold, budget=budget,
                tracer=tracer, registry=self.metrics_registry)
        else:  # relaxed
            strict = self.search(query, mode="strict", use_cache=False,
                                 ranker=ranker, budget=budget,
                                 tracer=tracer)
            if strict.nodes:
                # Strict answered: same nodes, provenance says "relaxed
                # mode, no relaxation needed".  The inner search already
                # recorded itself; don't double-count.
                response = replace(
                    strict, stats=replace(strict.stats, mode="relaxed"),
                    semantics=SemanticsInfo(mode="relaxed", relaxed=False))
                return self._stamp_request_id(response, request_id, tracer)
            from repro.semantics import relax_search

            vocabulary = self._relaxation_vocabulary()

            def search_fn(rewritten: Query) -> GKSResponse:
                sub = (budget.subbudget(rebase=True)
                       if budget is not None else None)
                return self.search(rewritten, mode="strict",
                                   use_cache=False, ranker=ranker,
                                   budget=sub)

            response = relax_search(query, vocabulary, search_fn,
                                    budget=budget, tracer=tracer,
                                    registry=self.metrics_registry)
        response = self._stamp_request_id(response, request_id, tracer)
        self._record_search(response, tracer=tracer)
        if (strict_deadline and response.degraded
                and response.degradation.reason == "deadline"):
            raise SearchTimeout(
                f"query {query} exceeded its deadline: "
                f"{response.degradation.render()}",
                report=response.degradation)
        return response

    def search_top_k(self, query: str | Query, k: int | None = None,
                     s: int | None = None, *,
                     ranker: Ranker | None = None,
                     budget: SearchBudget | None = None,
                     options: SearchOptions | None = None,
                     mode: str | None = None,
                     threshold: float | None = None,
                     tracer: Tracer | NullTracer | None = None,
                     request_id: str | None = None
                     ) -> GKSResponse:
        """The ``k`` best nodes only, with early-terminated ranking.

        Tuning parameters beyond ``s`` are keyword-only; unset ones fall
        back first to *options*, then to the engine's
        :class:`EngineConfig`.  ``k`` may come positionally or from
        ``options.k``; omitting both is a
        :class:`~repro.errors.ValidationError`.  Non-strict modes run
        the full semantic pipeline, then truncate (the semantic ranks —
        probability, penalty — are global properties early termination
        cannot preserve).
        """
        from repro.core.topk import search_top_k

        s, _use_cache, _strict, budget, mode, threshold = (
            self._resolve_options(
                options, s=s, use_cache=None, strict_deadline=None,
                budget=budget, mode=mode, threshold=threshold))
        if k is None and options is not None:
            k = options.k
        if k is None:
            raise ValidationError(
                "search_top_k needs k — positionally or via "
                "SearchOptions(k=...)")
        if ranker is None:
            ranker = self.config.ranker
        if isinstance(query, str):
            query = self.parse_query(query,
                                     s=s if s is not None else self.config.s)
        elif s is not None:
            query = query.with_s(s)
        if mode != "strict":
            response = self._semantic_search(
                query, mode=mode, threshold=threshold, ranker=ranker,
                budget=budget, strict_deadline=False, tracer=tracer,
                request_id=request_id)
            return replace(response, nodes=response.nodes[:k])
        index = self.index  # one read: run wholly on one snapshot
        if isinstance(index, ShardedIndex):
            from repro.core.scatter import sharded_top_k

            response = sharded_top_k(index, query, k, ranker=ranker,
                                     budget=budget, tracer=tracer)
        else:
            response = search_top_k(index, query, k, ranker=ranker,
                                    budget=budget, tracer=tracer)
        response = self._stamp_request_id(response, request_id, tracer)
        self._record_search(response, tracer=tracer)
        return response

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _count_cache(self, event: str) -> None:
        if event == "hits":
            self._cache_hits += 1
        elif event == "misses":
            self._cache_misses += 1
        else:
            self._cache_evictions += 1
        self.metrics_registry.counter(
            f"gks_cache_{event}_total",
            help=f"Engine response-cache {event}.").inc()

    @staticmethod
    def _stamp_request_id(response: GKSResponse, request_id: str | None,
                          tracer: Tracer | NullTracer | None
                          ) -> GKSResponse:
        """Stamp the serving correlation id on stats and the root span."""
        if request_id is None:
            return response
        if tracer is not None and tracer.enabled and tracer.roots:
            tracer.roots[-1].set(request_id=request_id)
        return replace(response,
                       stats=response.stats.with_request_id(request_id))

    def _record_search(self, response: GKSResponse,
                       tracer: Tracer | NullTracer | None) -> None:
        """File one served response with metrics, slow log and traces."""
        stats = response.stats
        registry = self.metrics_registry
        registry.counter("gks_searches_total",
                         help="Queries served by the engine.").inc()
        if stats.cache_hit:
            return  # cached: no pipeline ran, nothing more to measure
        registry.histogram(
            "gks_search_seconds",
            help="End-to-end search pipeline latency."
        ).observe(stats.total_seconds)
        for stage, seconds in stats.stage_breakdown().items():
            registry.histogram(
                "gks_search_stage_seconds",
                help="Per-stage search pipeline latency."
            ).observe(seconds, labels={"stage": stage})
        registry.counter(
            "gks_search_postings_scanned_total",
            help="Merged posting-list entries (|SL|) processed."
        ).inc(stats.postings_scanned)
        registry.counter(
            "gks_search_nodes_emitted_total",
            help="Response nodes returned to callers."
        ).inc(stats.nodes_emitted)
        if stats.degraded:
            registry.counter(
                "gks_search_degraded_total",
                help="Responses degraded by an exhausted budget.").inc()
        self.slow_log.observe(str(response.query), response.query.s, stats)
        if tracer is not None and tracer.enabled and tracer.roots:
            self._recent_traces.append(tracer.roots[-1])

    def metrics(self) -> dict:
        """JSON-able snapshot of the engine's metrics registry."""
        return self.metrics_registry.snapshot()

    def recent_traces(self) -> list[Span]:
        """Root spans of the most recent traced searches, oldest first."""
        return list(self._recent_traces)

    def slow_queries(self) -> list[SlowQuery]:
        """The retained slow-query log entries, oldest first."""
        return self.slow_log.entries()

    def cache_info(self) -> dict:
        """Hit/miss/eviction accounting of the response LRU cache."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
            "size": len(self._response_cache),
            "capacity": self._cache_size,
        }

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, config=None, **overrides):
        """A started :class:`repro.serve.ServerCore` wrapping this engine.

        ``config`` is a :class:`repro.serve.ServeConfig` (defaults used
        when omitted); keyword ``overrides`` are applied on top via
        ``ServeConfig.replace``.  Deferred import: serve sits *above*
        core in the layer DAG, so this plug-point must not import it at
        module scope.
        """
        from repro.serve import ServeConfig, ServerCore

        if config is None:
            config = ServeConfig()
        if overrides:
            config = config.replace(**overrides)
        return ServerCore(self, config)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic counter bumped on every serving-index publication."""
        return self._generation

    def add_mutation_listener(self, listener) -> None:
        """Register ``listener(info)`` to run after every mutation.

        The serve layer uses this to invalidate its TTL cache the moment
        the corpus changes.  Listeners run outside the mutation lock and
        must not raise (exceptions are swallowed — a broken observer must
        not fail an acknowledged write).
        """
        with self._mutation_lock:
            if listener not in self._mutation_listeners:
                self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener) -> None:
        with self._mutation_lock:
            try:
                self._mutation_listeners.remove(listener)
            except ValueError:
                pass

    def _notify_mutation(self, info: dict) -> None:
        for listener in list(self._mutation_listeners):
            try:
                listener(info)
            except Exception:  # noqa: BLE001 - observer must not fail writes
                pass

    def add_document(self, text: str, name: str | None = None) -> dict:
        """Append one XML document to the repository and the index.

        On a durable engine (``config.store_path``) the write is
        crash-safe: the document is parsed (validated) first, appended
        to the fsync'd write-ahead log, *then* applied to the memtable
        and published as a new immutable serving snapshot; crossing
        ``memtable_docs`` pending documents triggers a flush (and, past
        ``compact_segments`` runs per shard, a compaction) inside the
        same mutation hold.  On a legacy engine only the shard owning
        the new document is rebuilt; the others are reused as-is.

        Either way the response cache is cleared — the repository has
        already grown, so any cached response may be stale — and the
        returned info dict (``doc_id``, ``name``, ``generation``, plus
        ``lsn``/``pending``/``flushed`` when durable) is passed to the
        mutation listeners.
        """
        with self._mutation_lock:
            if self._store is not None:
                info = self._add_durable(text, name)
            else:
                info = self._add_legacy(text, name)
        self._notify_mutation(info)
        return info

    def _add_legacy(self, text: str, name: str | None) -> dict:  # holds: _mutation_lock
        from repro.index.incremental import append_document

        document = self.repository.parse(text, name=name)
        try:
            if isinstance(self.index, ShardedIndex):
                self.index = self.index.with_appended(
                    document, index_tags=self.index_tags)
            else:
                self.index = append_document(self.index, document)
            if self.config.mode == "probabilistic":
                from repro.semantics import attach_tables

                self.index = attach_tables(self.index, self.repository)
            self._generation += 1
        finally:
            with self._cache_lock:
                self._response_cache.clear()  # cached responses now stale
        return {"doc_id": document.doc_id, "name": document.name,
                "generation": self._generation, "durable": False}

    def _add_durable(self, text: str, name: str | None) -> dict:  # holds: _mutation_lock
        doc_id = len(self.repository)
        # Parse *before* the WAL append: a malformed document must fail
        # the caller, never poison the log that recovery replays.
        document = parse_document(text, doc_id=doc_id,
                                  attributes_as_children=True, name=name)
        lsn = self._store.append(doc_id, document.name, text)
        # From here the write is durable; apply it to memory.
        self.repository.add(document)
        unit = build_unit(document, self.config.analyzer,
                          self.config.index_tags)
        self._pending.append(PendingDocument(
            lsn=lsn, doc_id=doc_id,
            shard_id=shard_of(doc_id, document.name, self.config.shards,
                              self.config.shard_strategy),
            name=document.name, text=text, unit=unit))
        self._recompose()
        flushed = False
        if len(self._pending) >= self.config.memtable_docs:
            self._flush_locked()
            flushed = True
        return {"doc_id": doc_id, "name": document.name, "lsn": lsn,
                "generation": self._generation,
                "pending": len(self._pending), "flushed": flushed,
                "durable": True}

    def flush(self) -> dict:
        """Flush the memtable to an immutable on-disk segment.

        No-op (``{"flushed": 0, ...}``) when nothing is pending.  After
        the flush, any shard whose segment chain reached
        ``config.compact_segments`` is compacted.  Raises
        :class:`~repro.errors.StorageError` on a non-durable engine.
        """
        with self._mutation_lock:
            self._require_store("flush")
            count = len(self._pending)
            if count:
                self._flush_locked()
            info = {"flushed": count, "generation": self._generation,
                    "store_generation": self._store.manifest.generation}
        if count:
            self._notify_mutation(info)
        return info

    def compact(self) -> dict:
        """Merge multi-run shards down to one segment each.

        Returns the shards compacted (possibly none).  Raises
        :class:`~repro.errors.StorageError` on a non-durable engine.
        """
        with self._mutation_lock:
            self._require_store("compact")
            compacted = self._compact_locked()
            info = {"compacted_shards": sorted(compacted),
                    "generation": self._generation,
                    "store_generation": self._store.manifest.generation}
        if compacted:
            self._notify_mutation(info)
        return info

    def close(self) -> None:
        """Release the store's file handles (durable engines only)."""
        with self._mutation_lock:
            if self._store is not None:
                self._store.close()

    def _require_store(self, operation: str) -> None:
        if self._store is None:
            raise StorageError(
                f"cannot {operation}: engine has no segmented store "
                f"(open it with config.store_path)", diagnosis="unwritable")

    def _flush_locked(self) -> None:
        """Flush pending docs; caller holds the mutation lock.

        The whole operation is traced (a ``flush`` root span retained in
        :meth:`recent_traces`) and timed into the
        ``gks_store_flush_seconds`` histogram, so the durability path is
        as observable through ``/metrics`` as the query path.
        """
        tracer = Tracer()
        count = len(self._pending)
        with tracer.span("flush") as span:
            with tracer.span("segments"):
                merged = self._store.flush(self._pending)
            for shard_id, (record, unit) in merged.items():
                self._durable_units.setdefault(shard_id, []).append(
                    (record.doc_ids, unit))
            self._pending = []
            with tracer.span("recompose"):
                self._recompose()
            span.set(documents=count, shards=len(merged),
                     store_generation=self._store.manifest.generation)
        self._recent_traces.append(tracer.roots[-1])
        self.metrics_registry.histogram(
            "gks_store_flush_seconds",
            help="Wall time of memtable flushes (segments + recompose)."
        ).observe(tracer.roots[-1].duration_s)
        if any(len(chain) >= self.config.compact_segments
               for chain in self._durable_units.values()):
            self._compact_locked()

    def _compact_locked(self) -> set[int]:
        """Compact multi-run shards; caller holds the mutation lock."""
        tracer = Tracer()
        with tracer.span("compact") as span:
            with tracer.span("segments"):
                merged = self._store.compact()
            if merged:
                for shard_id, (record, unit) in merged.items():
                    self._durable_units[shard_id] = [(record.doc_ids, unit)]
                with tracer.span("recompose"):
                    self._recompose()
            span.set(shards=len(merged),
                     store_generation=self._store.manifest.generation)
        if not merged:
            return set()
        self._recent_traces.append(tracer.roots[-1])
        self.metrics_registry.histogram(
            "gks_store_compaction_seconds",
            help="Wall time of segment compactions (merge + recompose)."
        ).observe(tracer.roots[-1].duration_s)
        return set(merged)

    def _recompose(self) -> None:  # holds: _mutation_lock
        """Publish a fresh immutable serving snapshot (caller holds the
        mutation lock).  In-flight searches finish on the snapshot they
        captured; the generation bump keeps their responses out of the
        cache."""
        self.index = compose_serving(
            self._durable_units, self._pending, self.config,
            names=tuple(document.name for document in self.repository))
        self._generation += 1
        self.metrics_registry.gauge(
            "gks_memtable_pending",
            help="Documents in the memtable awaiting a flush."
        ).set(len(self._pending))
        self.metrics_registry.gauge(
            "gks_engine_generation",
            help="Serving-snapshot generation of the engine."
        ).set(self._generation)
        with self._cache_lock:
            self._response_cache.clear()

    # ------------------------------------------------------------------
    # Analytics (paper §8 future work)
    # ------------------------------------------------------------------
    def facets(self, response: GKSResponse, column, top: int | None = None):
        """Facet the response records by a context attribute."""
        from repro.analytics.aggregate import facets

        return facets(self.repository, response, column, top=top)

    def aggregate(self, response: GKSResponse, column):
        """Numeric summary of a context attribute over the response."""
        from repro.analytics.aggregate import aggregate

        return aggregate(self.repository, response, column)

    # ------------------------------------------------------------------
    # Search Analysis Engine
    # ------------------------------------------------------------------
    def insights(self, response: GKSResponse, top: int = 10) -> InsightReport:
        """DI of a response (Def 2.3.1, §6.2)."""
        return discover_insights(self.repository, response, top=top,
                                 analyzer=self.analyzer)

    def recursive_insights(self, response: GKSResponse, rounds: int = 1,
                           top: int = 10,
                           seed_keywords: int = 5) -> list[InsightReport]:
        """Recursive DI (§2.3): one report per recursion round."""
        return discover_recursive(self.repository, self.index, response,
                                  rounds=rounds, top=top,
                                  seed_keywords=seed_keywords,
                                  analyzer=self.analyzer)

    def refine(self, response: GKSResponse,
               insights: InsightReport | None = None,
               top: int = 5) -> list[Refinement]:
        """Query-refinement suggestions (§6.1); computes DI when needed."""
        if insights is None:
            insights = self.insights(response, top=top)
        return suggest(response, insights, top=top)

    # ------------------------------------------------------------------
    # Result rendering
    # ------------------------------------------------------------------
    def node_at(self, dewey: Dewey) -> XMLNode | None:
        return self.repository.node_at(dewey)

    def snippet(self, node: Dewey | RankedNode, indent: int = 2,
                max_depth: int | None = None) -> str:
        """The "well-constructed XML chunk" for one result (§1.2)."""
        dewey = node.dewey if isinstance(node, RankedNode) else node
        element = self.repository.node_at(dewey)
        if element is None:
            return f"<!-- missing node {format_dewey(dewey)} -->"
        if max_depth is None:
            return serialize_node(element, indent=indent)
        base = len(dewey)
        return serialize_node(
            element, indent=indent,
            keep=lambda child: len(child.dewey) - base <= max_depth)

    def suggest_s(self, query: str | Query, min_results: int = 1) -> int:
        """Data-driven threshold: the strictest ``s`` that still answers."""
        from repro.core.threshold import suggest_s

        if isinstance(query, str):
            query = self.parse_query(query)
        return suggest_s(self.index, query, min_results=min_results)

    def highlighted_snippet(self, node: Dewey | RankedNode,
                            query: Query, indent: int = 2,
                            marker: str = "**") -> str:
        """Snippet with the query keywords marked in text values."""
        from repro.core.highlight import highlight_snippet

        dewey = node.dewey if isinstance(node, RankedNode) else node
        element = self.repository.node_at(dewey)
        if element is None:
            return f"<!-- missing node {format_dewey(dewey)} -->"
        return highlight_snippet(element, query, analyzer=self.analyzer,
                                 indent=indent, marker=marker)

    def response_chunk(self, node: RankedNode, indent: int = 2) -> str:
        """The Fig. 2(b)-style pruned chunk: context attributes plus the
        paths to the matched keyword occurrences only."""
        from repro.core.chunks import response_chunk

        query = Query.of(list(node.matched_keywords) or ["?"])
        return response_chunk(self.repository, self.index, query, node,
                              indent=indent)

    def explain(self, node: RankedNode) -> str:
        """Render the potential-flow account behind a node's rank (§5)."""
        from repro.core.explain import explain_rank

        breakdown = node.breakdown
        if breakdown is None:
            breakdown = rank_node(self.index, Query.of(
                list(node.matched_keywords) or ["?"]), node.dewey)
        return explain_rank(self.index, breakdown,
                            repository=self.repository).render()

    def describe(self, node: RankedNode) -> str:
        """One-line human summary of a result row."""
        element = self.repository.node_at(node.dewey)
        tag = element.tag if element is not None else "?"
        keywords = ", ".join(node.matched_keywords)
        return (f"<{tag}> {node.dewey_text}  score={node.score:.3f}  "
                f"keywords[{node.distinct_keywords}]={{{keywords}}}")


# ----------------------------------------------------------------------
# GKSEngine.open helpers
# ----------------------------------------------------------------------
def _looks_like_xml(item) -> bool:
    return isinstance(item, str) and item.lstrip().startswith("<")


def _resolve_source(source, config: EngineConfig) -> Repository:
    """Turn an ``open`` *source* into a :class:`Repository`."""
    if isinstance(source, Repository):
        return source
    if isinstance(source, Texts):
        return Repository.from_texts(source, policy=config.recovery)
    if isinstance(source, Paths):
        return Repository.from_paths(source, policy=config.recovery)
    if isinstance(source, (str, Path)):
        source = [source]
    try:
        items = list(source)
    except TypeError:
        raise ConfigError(
            f"cannot open source of type {type(source).__name__}; "
            "expected a Repository, XML text(s) or corpus path(s)")
    if all(_looks_like_xml(item) for item in items):
        return Repository.from_texts(items, policy=config.recovery)
    if not any(_looks_like_xml(item) for item in items):
        return Repository.from_paths(items, policy=config.recovery)
    raise ConfigError(
        "source mixes XML texts and paths; wrap it in Texts(...) or "
        "Paths(...) to state which it is")


def _index_compatible(index: GKSIndex | ShardedIndex,
                      repository: Repository,
                      config: EngineConfig) -> bool:
    """Is a persisted index usable for this repository under this config?

    The shard layout must match the config exactly — a monolithic cache
    cannot serve a sharded engine (and vice versa) because the dispatch
    path is chosen by the index type.  Document names and the persisted
    analyzer flags must also match, else the index describes a different
    corpus.
    """
    if config.shards > 1:
        if not isinstance(index, ShardedIndex):
            return False
        if (index.num_shards != config.shards
                or index.strategy != config.shard_strategy):
            return False
    elif isinstance(index, ShardedIndex):
        return False
    if tuple(index.document_names) != tuple(
            document.name for document in repository):
        return False
    if config.mode == "probabilistic":
        from repro.semantics import compile_tables, tables_of

        # The persisted tables must match what this corpus compiles to —
        # stale or absent tables mean stale probabilities, so rebuild.
        if tables_of(index) != compile_tables(repository):
            return False
    # storage persists only the analyzer flags, so compare just those
    return (index.analyzer.use_stopwords == config.analyzer.use_stopwords
            and index.analyzer.use_stemming == config.analyzer.use_stemming)
