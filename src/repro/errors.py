"""Exception hierarchy for the GKS reproduction library.

Every error raised by :mod:`repro` derives from :class:`GKSError`, so callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish parse problems from index or query problems.
"""

from __future__ import annotations


class GKSError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class XMLSyntaxError(GKSError):
    """Raised by the streaming parser on malformed XML input.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the input, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DeweyError(GKSError):
    """Raised for invalid Dewey identifiers or Dewey operations."""


class IndexError_(GKSError):
    """Raised for inconsistent or unusable index state.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class StorageError(GKSError):
    """Raised when a persisted index cannot be written or read back."""


class QueryError(GKSError):
    """Raised for malformed keyword queries (e.g. empty after analysis)."""


class DatasetError(GKSError):
    """Raised by synthetic dataset generators for invalid parameters."""
