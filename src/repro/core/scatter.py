"""Scatter-gather query execution over a :class:`ShardedIndex`.

The scatter phase runs merge → LCP → LCE *per shard*; the gather phase
re-assembles the per-shard candidate sets into the exact global
candidate order and runs the ranking stage once, routing every rank
computation to the shard that owns the node's document.  The combined
:class:`~repro.core.results.GKSResponse` is identical — node for node,
score for score, including every budget-degradation path — to what the
monolithic pipeline returns, because:

* a shard's SL is the restriction of the global SL to its documents,
  and consecutive same-document SL entries are the same in both (Dewey
  tuples between two doc-``d`` ids all start with ``d``);
* every non-empty LCP block lies inside one document (a cross-document
  block has an empty common prefix and is skipped), so the per-shard
  LCP lists partition the global one with identical counters;
* LCE discovery only ever relates an LCP entry to entity *ancestors*,
  which share its document — and entries of document ``d`` all precede
  entries of later documents in creation order, so per-shard creation
  order is the restriction of the global creation order;
* ranking flows potential inside one subtree — one document, one shard.

The gather step therefore reconstructs the global candidate iteration
order (LCE nodes in creation order, then fallback nodes in Dewey
order), applies the *parent* budget's ``recovery_k`` / ``max_nodes``
admission exactly as :func:`repro.core.search.search` would, and sorts
by the same total ranking key.

Budget semantics: ``deadline`` is policed per shard by child budgets
(:meth:`SearchBudget.subbudget`) sharing the parent's clock **and start
time**, so every child's :meth:`SearchBudget.remaining_s` reads the same
headroom the monolithic pipeline would see — all deadline arithmetic
lives in the budget, none here; ``max_sl`` is applied globally across
the shard SLs (the kept prefix is the same document-order prefix the
monolithic cap keeps); ``max_nodes`` caps the single global rank loop.
The first trip — a shard's or the global admission's — becomes the
combined response's degradation report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.budget import DegradationReport, SearchBudget
from repro.core.lce import LCEResult, discover_lce
from repro.core.lcp import compute_lcp_list
from repro.core.merge import merged_list
from repro.core.query import Query
from repro.core.ranking import rank_node
from repro.core.results import GKSResponse, RankedNode, SearchProfile
from repro.core.search import Ranker
from repro.core.topk import _bound_key, _heap_key, distinct_keyword_count
from repro.index.postings import MergedEntry
from repro.index.sharding import Shard, ShardedIndex
from repro.obs.metrics import global_registry
from repro.obs.stats import QueryStats
from repro.obs.trace import NOOP_TRACER, NullTracer, Tracer
from repro.xmltree.dewey import Dewey

_STAGE_ORDER = {"merge": 0, "lcp": 1, "lce": 2, "rank": 3}


@dataclass(frozen=True)
class _Candidate:
    """One gathered response candidate with its global creation rank.

    ``section`` 0 = surviving LCE node, 1 = appended fallback node; the
    monolithic candidate list is all of section 0 (creation order) then
    all of section 1 (Dewey order), so sorting by
    ``(section, doc_id, position)`` — positions being shard-local and
    each document owned by one shard — reproduces it exactly.
    """

    section: int
    doc_id: int
    position: int
    dewey: Dewey
    shard_id: int
    is_lce: bool
    estimate: int


class _ShardRun:
    """Everything the scatter phase produced for one shard."""

    def __init__(self, shard: Shard, sl: list[MergedEntry],
                 budget: SearchBudget | None) -> None:
        self.shard = shard
        self.sl = sl
        self.budget = budget
        self.lcp_entries = 0
        self.lce: LCEResult | None = None
        self.fallback: dict[Dewey, int] = {}


def _shard_label(shard: Shard) -> dict[str, str]:
    return {"shard": str(shard.shard_id)}


def _scatter(index: ShardedIndex, query: Query,
             budget: SearchBudget | None, tracer, clock,
             span_name: str) -> tuple[list[_ShardRun], float]:
    """Run merge (with global SL admission) + LCP + LCE on every shard.

    Returns the per-shard runs and the clock reading taken right after
    the merge phase (the profile's merge/LCP boundary).
    """
    registry = global_registry()
    searches = registry.counter(
        "gks_shard_searches_total",
        help="Per-shard scatter pipeline executions.")
    shard_seconds = registry.histogram(
        "gks_shard_search_seconds",
        help="Wall time of one shard's scatter pipeline.")
    postings_scanned = registry.counter(
        "gks_shard_postings_scanned_total",
        help="SL entries processed per shard (after global admission).")

    runs: list[_ShardRun] = []
    with tracer.span("merge") as span:
        for shard in index.shards:
            child = budget.subbudget() if budget is not None else None
            with tracer.span("shard_merge", shard=shard.shard_id):
                sl = merged_list(shard.index, query, budget=child)
            runs.append(_ShardRun(shard, sl, child))
        total_sl = _admit_global_sl(runs, budget)
        span.add("sl_entries", total_sl)
    after_merge = clock()

    for run in runs:
        shard_started = clock()
        with tracer.span(span_name, shard=run.shard.shard_id) as span:
            with tracer.span("lcp") as stage:
                lcp = compute_lcp_list(run.sl, query.s, budget=run.budget)
                stage.add("entries", len(lcp))
            with tracer.span("lce") as stage:
                run.lce = discover_lce(lcp, run.sl, run.shard.index,
                                       budget=run.budget)
                stage.add("nodes", len(run.lce.lce))
            run.lcp_entries = len(lcp)
            run.fallback = run.lce.fallback_candidates()
            span.set(sl_entries=len(run.sl), lcp_entries=len(lcp),
                     lce_nodes=len(run.lce.lce))
        labels = _shard_label(run.shard)
        searches.inc(labels=labels)
        shard_seconds.observe(clock() - shard_started, labels=labels)
        postings_scanned.inc(len(run.sl), labels=labels)

    if budget is not None:
        budget.adopt(_first_child_report(runs))
    return runs, after_merge


def _admit_global_sl(runs: list[_ShardRun],
                     budget: SearchBudget | None) -> int:
    """Apply the parent ``max_sl`` cap *across* shards.

    The monolithic cap keeps the first ``max_sl`` entries of the global
    SL in document order; the same prefix is recovered here by k-way
    merging the (sorted, disjoint) shard SLs, and each shard keeps its
    part of that prefix.  Trips the parent budget exactly like
    :meth:`SearchBudget.admit_sl`.  Returns the total kept SL size.
    """
    total = sum(len(run.sl) for run in runs)
    if budget is None or budget.max_sl is None or total <= budget.max_sl:
        return total
    kept: list[int] = [0] * len(runs)
    tagged = [[(entry, position) for entry in run.sl]
              for position, run in enumerate(runs)]
    merged = heapq.merge(*tagged)
    for _ in range(budget.max_sl):
        _, position = next(merged)
        kept[position] += 1
    for run, keep in zip(runs, kept):
        run.sl = run.sl[:keep]
    budget.trip("merge", "max_sl", budget.max_sl, total)
    return budget.max_sl


def _first_child_report(runs: list[_ShardRun]) -> DegradationReport | None:
    """The earliest-stage shard trip (ties: lowest shard id)."""
    reports = [run.budget.report for run in runs
               if run.budget is not None and run.budget.report is not None]
    if not reports:
        return None
    return min(reports,
               key=lambda report: _STAGE_ORDER.get(report.stage, 9))


def _gather_candidates(runs: list[_ShardRun]) -> list[_Candidate]:
    """Per-shard response candidates in the global creation order."""
    candidates: list[_Candidate] = []
    for run in runs:
        assert run.lce is not None
        deweys = run.lce.response_deweys()
        lce_count = len(run.lce.lce)
        for position, dewey in enumerate(deweys):
            in_lce = position < lce_count
            estimate = (run.lce.lce[dewey].estimated_keywords if in_lce
                        else run.fallback.get(dewey, 0))
            candidates.append(_Candidate(
                section=0 if in_lce else 1, doc_id=dewey[0],
                position=position, dewey=dewey,
                shard_id=run.shard.shard_id, is_lce=in_lce,
                estimate=estimate))
    candidates.sort(key=lambda c: (c.section, c.doc_id, c.position))
    return candidates


def _ranked_node(index: ShardedIndex, query: Query, ranker: Ranker,
                 candidate: _Candidate) -> RankedNode:
    shard = index.shards[candidate.shard_id]
    breakdown = ranker(shard.index, query, candidate.dewey)
    return RankedNode(
        dewey=candidate.dewey, score=breakdown.score,
        distinct_keywords=breakdown.distinct_keywords,
        matched_keywords=breakdown.matched_keywords,
        is_lce=candidate.is_lce,
        estimated_keywords=(candidate.estimate if candidate.is_lce
                            else (candidate.estimate or query.s)),
        breakdown=breakdown)


def _response(query: Query, nodes: list[RankedNode], runs: list[_ShardRun],
              budget: SearchBudget | None,
              timings: tuple[float, float, float, float]) -> GKSResponse:
    started, after_merge, after_lce, finished = timings
    sl_total = sum(len(run.sl) for run in runs)
    lcp_total = sum(run.lcp_entries for run in runs)
    lce_total = sum(len(run.lce.lce) for run in runs
                    if run.lce is not None)
    tripped = budget is not None and budget.tripped
    profile = SearchProfile(merged_list_size=sl_total,
                            lcp_entries=lcp_total,
                            lce_nodes=lce_total,
                            seconds=finished - started,
                            merge_seconds=after_merge - started,
                            lcp_seconds=0.0,
                            lce_seconds=after_lce - after_merge,
                            rank_seconds=finished - after_lce)
    stats = QueryStats(total_seconds=profile.seconds,
                       merge_seconds=profile.merge_seconds,
                       lcp_seconds=profile.lcp_seconds,
                       lce_seconds=profile.lce_seconds,
                       rank_seconds=profile.rank_seconds,
                       postings_scanned=sl_total,
                       lcp_entries=lcp_total,
                       lce_nodes=lce_total,
                       nodes_emitted=len(nodes),
                       budget_trips=1 if tripped else 0,
                       trip_stage=budget.report.stage if tripped else None,
                       trip_reason=budget.report.reason if tripped else None,
                       degraded=tripped)
    return GKSResponse(query=query, nodes=tuple(nodes), profile=profile,
                       degraded=tripped,
                       degradation=budget.report if tripped else None,
                       stats=stats)


def sharded_search(index: ShardedIndex, query: Query,
                   ranker: Ranker = rank_node,
                   budget: SearchBudget | None = None,
                   tracer: Tracer | NullTracer | None = None
                   ) -> GKSResponse:
    """Scatter-gather counterpart of :func:`repro.core.search.search`.

    Returns a response identical to running the monolithic pipeline on
    the unsharded index, for every budget configuration (see the module
    docstring for why).
    """
    if tracer is None:
        tracer = NOOP_TRACER
    clock = tracer.clock
    effective = query.with_s(query.effective_s)
    if budget is not None:
        budget.start()

    with tracer.span("search", query=" ".join(effective.keywords),
                     s=effective.s, shards=index.num_shards) as root:
        started = clock()
        runs, after_merge = _scatter(index, effective, budget, tracer,
                                     clock, span_name="shard")
        after_lce = clock()
        with tracer.span("rank") as span:
            candidates = _gather_candidates(runs)
            pre_tripped = budget is not None and budget.tripped
            if pre_tripped:
                candidates = candidates[:budget.recovery_k]
            nodes: list[RankedNode] = []
            total = len(candidates)
            for candidate in candidates:
                if (budget is not None and not pre_tripped
                        and not budget.admit_node(len(nodes), total)):
                    break
                nodes.append(_ranked_node(index, effective, ranker,
                                          candidate))
            nodes.sort(key=RankedNode.sort_key)
            span.add("ranked", len(nodes))
        finished = clock()
        if budget is not None and budget.tripped:
            root.set(degraded=True, trip_stage=budget.report.stage,
                     trip_reason=budget.report.reason)

    return _response(effective, nodes, runs, budget,
                     (started, after_merge, after_lce, finished))


def sharded_top_k(index: ShardedIndex, query: Query, k: int,
                  ranker: Ranker = rank_node,
                  budget: SearchBudget | None = None,
                  tracer: Tracer | NullTracer | None = None
                  ) -> GKSResponse:
    """Scatter-gather counterpart of :func:`repro.core.topk.search_top_k`.

    Per-shard candidate discovery followed by one global bound-ordered
    ranking loop: candidates from all shards are processed in decreasing
    ``P²`` bound and ranking stops as soon as the current k-th best
    score beats the next candidate's bound — identical early-termination
    (and identical result) to the monolithic top-k.
    """
    from repro.errors import ConfigError

    if k < 1:
        raise ConfigError(f"k must be positive: {k}")
    if tracer is None:
        tracer = NOOP_TRACER
    clock = tracer.clock
    effective = query.with_s(query.effective_s)
    if budget is not None:
        budget.start()

    with tracer.span("search_top_k", query=" ".join(effective.keywords),
                     s=effective.s, k=k, shards=index.num_shards) as root:
        started = clock()
        runs, after_merge = _scatter(index, effective, budget, tracer,
                                     clock, span_name="shard")
        after_lce = clock()

        candidates = _gather_candidates(runs)
        pre_tripped = budget is not None and budget.tripped
        if pre_tripped:
            candidates = candidates[:budget.recovery_k]

        with tracer.span("rank") as rank_span:
            bounded = sorted(
                ((distinct_keyword_count(index.shards[c.shard_id].index,
                                         effective, c.dewey), c)
                 for c in candidates),
                key=lambda pair: (-(pair[0] ** 2), pair[1].dewey))

            best: list[tuple[tuple, int, RankedNode]] = []
            ranked_count = 0
            for sequence, (count, candidate) in enumerate(bounded):
                bound = float(count * count)
                if len(best) >= k and best[0][0] >= _bound_key(bound):
                    break
                if (budget is not None and not pre_tripped
                        and budget.checkpoint("rank", sequence,
                                              len(bounded))):
                    break
                node = _ranked_node(index, effective, ranker, candidate)
                ranked_count += 1
                entry = (_heap_key(node), sequence, node)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry[0] > best[0][0]:
                    heapq.heapreplace(best, entry)
            rank_span.add("ranked", ranked_count)
            rank_span.add("skipped", len(bounded) - ranked_count)

        nodes = sorted((node for _, _, node in best),
                       key=RankedNode.sort_key)
        finished = clock()
        if budget is not None and budget.tripped:
            root.set(degraded=True, trip_stage=budget.report.stage,
                     trip_reason=budget.report.reason)

    return _response(effective, nodes, runs, budget,
                     (started, after_merge, after_lce, finished))
