"""A process-wide registry of counters, gauges and histograms.

Zero dependencies: metric state is plain dicts keyed by a canonical
(sorted) label tuple, and exposition is either a JSON-able snapshot
(:meth:`MetricsRegistry.snapshot`) or Prometheus text format
(:meth:`MetricsRegistry.render_prometheus`), so a scrape endpoint or a
``--metrics-json`` dump need nothing beyond the standard library.

Every subsystem (ingestion, index build/storage, search, cache, budget)
records into :func:`global_registry` by default; tests that assert exact
values pass their own :class:`MetricsRegistry` or call
:meth:`MetricsRegistry.reset`.
"""

from __future__ import annotations

import json
from repro.errors import ConfigError, ValidationError

#: Histogram bucket upper bounds for second-valued durations.
DEFAULT_SECONDS_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                           0.25, 0.5, 1.0, 2.5, 5.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value))
                        for key, value in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping (in that order — escaping the escapes
    first keeps the mapping reversible).
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (scrape parsers need this)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (not double-quote)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(f'{name}="{escape_label_value(value)}"'
                    for name, value in key)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1,
            labels: dict[str, str] | None = None) -> None:
        if amount < 0:
            raise ValidationError(f"counter {self.name} cannot decrease: "
                             f"{amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, labels: dict[str, str] | None = None) -> float:
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help,
                "values": {_format_labels(key) or "": value
                           for key, value in sorted(self._values.items())}}

    def render_prometheus(self) -> list[str]:
        lines = _header(self)
        for key, value in sorted(self._values.items()):
            lines.append(f"{self.name}{_format_labels(key)} {_number(value)}")
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


class Gauge:
    """A value that can go up and down (sizes, capacities, timestamps)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, labels: dict[str, str] | None = None) -> None:
        self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1,
            labels: dict[str, str] | None = None) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1,
            labels: dict[str, str] | None = None) -> None:
        self.inc(-amount, labels=labels)

    def value(self, labels: dict[str, str] | None = None) -> float:
        return self._values.get(_label_key(labels), 0)

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help,
                "values": {_format_labels(key) or "": value
                           for key, value in sorted(self._values.items())}}

    def render_prometheus(self) -> list[str]:
        lines = _header(self)
        for key, value in sorted(self._values.items()):
            lines.append(f"{self.name}{_format_labels(key)} {_number(value)}")
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


class Histogram:
    """A bucketed distribution with cumulative Prometheus semantics."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
                 ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigError(f"histogram {name} buckets must be a sorted "
                             f"non-empty sequence: {buckets}")
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._series: dict[LabelKey, dict] = {}

    def _slot(self, key: LabelKey) -> dict:
        slot = self._series.get(key)
        if slot is None:
            slot = {"counts": [0] * len(self.buckets), "sum": 0.0,
                    "count": 0}
            self._series[key] = slot
        return slot

    def observe(self, value: float,
                labels: dict[str, str] | None = None) -> None:
        slot = self._slot(_label_key(labels))
        slot["sum"] += value
        slot["count"] += 1
        # per-bucket (non-cumulative) counts; exposition cumulates
        for position, upper in enumerate(self.buckets):
            if value <= upper:
                slot["counts"][position] += 1
                break

    def count(self, labels: dict[str, str] | None = None) -> int:
        slot = self._series.get(_label_key(labels))
        return slot["count"] if slot else 0

    def sum(self, labels: dict[str, str] | None = None) -> float:
        slot = self._series.get(_label_key(labels))
        return slot["sum"] if slot else 0.0

    def snapshot(self) -> dict:
        values = {}
        for key, slot in sorted(self._series.items()):
            values[_format_labels(key) or ""] = {
                "count": slot["count"],
                "sum": slot["sum"],
                "buckets": {str(upper): count for upper, count
                            in zip(self.buckets, slot["counts"])},
            }
        return {"type": self.kind, "help": self.help, "values": values}

    def render_prometheus(self) -> list[str]:
        lines = _header(self)
        for key, slot in sorted(self._series.items()):
            cumulative = 0
            for upper, count in zip(self.buckets, slot["counts"]):
                cumulative += count
                label = _label_key(dict(key) | {"le": _number(upper)})
                lines.append(f"{self.name}_bucket{_format_labels(label)} "
                             f"{cumulative}")
            label = _label_key(dict(key) | {"le": "+Inf"})
            lines.append(f"{self.name}_bucket{_format_labels(label)} "
                         f"{slot['count']}")
            lines.append(f"{self.name}_sum{_format_labels(key)} "
                         f"{_number(slot['sum'])}")
            lines.append(f"{self.name}_count{_format_labels(key)} "
                         f"{slot['count']}")
        return lines


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named metrics, created on first use, exposed as JSON or text.

    ``counter``/``gauge``/``histogram`` are idempotent getters: asking a
    second time returns the same object; asking for an existing name with
    a different metric kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: type, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ConfigError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
                  ) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    # -- exposition -----------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able {metric name: {type, help, values}} mapping."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for _, metric in sorted(self._metrics.items()):
            lines.extend(metric.render_prometheus())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Forget every metric (test isolation)."""
        self._metrics.clear()


def _header(metric: Metric) -> list[str]:
    lines = []
    if metric.help:
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    return lines


def _number(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus style)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem records into."""
    return _GLOBAL
