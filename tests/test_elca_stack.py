"""Tests for the stack-based (XRank-style) ELCA algorithm."""

import pytest

from repro.baselines.bruteforce import brute_elca
from repro.baselines.elca import elca
from repro.baselines.elca_stack import elca_stack
from repro.core.query import Query
from repro.datasets.registry import load_dataset
from repro.index.builder import build_index
from repro.xmltree.node import build_tree
from repro.xmltree.repository import Repository


class TestTable1:
    def test_q1_matches_closure_elca(self, figure1_index, fig1_ids):
        query = Query.of(["a", "b", "c"])
        assert elca_stack(figure1_index, query) == \
            [fig1_ids["x1"], fig1_ids["x2"]]

    def test_q3_returns_root(self, figure1_index, fig1_ids):
        query = Query.of(["a", "b", "c", "d"])
        assert elca_stack(figure1_index, query) == [fig1_ids["r"]]

    def test_missing_keyword_empty(self, figure1_index):
        assert elca_stack(figure1_index, Query.of(["a", "zzz"])) == []


class TestExclusivity:
    def test_all_keyword_non_elca_descendant_still_claims(self):
        """The regression the two-bit-set design exists for: a descendant
        that contains all keywords claims its occurrences even when it
        is itself not an ELCA (its own witnesses sit in a deeper
        ELCA)."""
        root = build_tree(("r", [
            ("mid", [
                ("k", "kilo"),
                ("deep", [("k", "kilo"), ("l", "lima"),
                          ("m", "mike")]),
                ("l2", [("l", "lima")]),
            ]),
            ("k", "kilo"),
            ("m", "mike"),
        ]))
        repo = Repository()
        repo.add_root(root)
        from repro.text.analyzer import Analyzer

        index = build_index(repo, analyzer=Analyzer(use_stemming=False))
        query = Query.of(["kilo", "lima", "mike"])
        expected = brute_elca(repo, query,
                              analyzer=Analyzer(use_stemming=False))
        assert elca_stack(index, query) == expected
        # and the root must NOT be an ELCA: its lima occurrences all sit
        # inside the all-keyword <mid>
        assert (0,) not in elca_stack(index, query)

    def test_nested_elcas_both_reported(self):
        root = build_tree(("r", [
            ("outer", [
                ("a", "kilo"), ("b", "lima"),
                ("inner", [("a", "kilo"), ("b", "lima")]),
            ]),
        ]))
        repo = Repository()
        repo.add_root(root)
        from repro.text.analyzer import Analyzer

        index = build_index(repo, analyzer=Analyzer(use_stemming=False))
        query = Query.of(["kilo", "lima"])
        result = elca_stack(index, query)
        assert (0, 0) in result        # outer has its own witnesses
        assert (0, 0, 2) in result     # inner too


class TestAgreement:
    @pytest.mark.parametrize("keywords", [
        ["karen"], ["karen", "mike"], ["karen", "mike", "john"],
        ["databas", "karen"], ["student", "name"],
    ])
    def test_agrees_with_closure_on_figure2a(self, figure2a_repo,
                                             figure2a_index, keywords):
        query = Query.of(keywords)
        assert elca_stack(figure2a_index, query) == \
            elca(figure2a_index, query) == \
            brute_elca(figure2a_repo, query)

    def test_agrees_on_corpus(self):
        repository = load_dataset("sigmod")
        index = build_index(repository)
        query = Query.parse('"Randy H. Katz" "David J. DeWitt"')
        assert elca_stack(index, query) == elca(index, query)
