"""Deterministic fault injection for resilience tests and benchmarks."""

from repro.testing.faults import (BurstyArrivals, FakeClock, IndexCorruptor,
                                  SlowEngine, StoreCorruptor, TornWriter,
                                  XMLCorruptor, corrupt_corpus)

__all__ = ["BurstyArrivals", "FakeClock", "IndexCorruptor", "SlowEngine",
           "StoreCorruptor", "TornWriter", "XMLCorruptor", "corrupt_corpus"]
