"""A1–A3 — ablations on the design choices DESIGN.md calls out.

* A1: the paper's ``s + counter − 1`` keyword estimate vs the exact
  recount (how often and how far the estimate misses).
* A2: potential-flow ranking vs plain keyword-count ranking (rank-score
  quality over the Table 6 workload).
* A3: indexing choices — stemming off, tag indexing off — and their
  effect on recall for the workload queries.
"""

from __future__ import annotations

import pytest

from repro.core.engine import GKSEngine
from repro.core.ranking import rank_by_keyword_count
from repro.datasets.registry import load_dataset
from repro.eval.metrics import response_rank_score
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for
from repro.eval.workload import TABLE6
from repro.text.analyzer import Analyzer


def test_a1_estimate_vs_exact(results_writer, benchmark):
    def measure():
        rows = []
        for workload in TABLE6:
            engine = engine_for(workload.dataset)
            response = engine.search(workload.text, s=workload.half_s())
            exact_hits = sum(
                1 for node in response
                if node.estimated_keywords == node.distinct_keywords)
            over = sum(
                1 for node in response
                if node.estimated_keywords > node.distinct_keywords)
            under = sum(
                1 for node in response
                if node.estimated_keywords < node.distinct_keywords)
            rows.append((workload.qid, len(response), exact_hits, over,
                         under))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("ablation_counting", render_table(
        ["Query", "nodes", "estimate exact", "overcounts", "undercounts"],
        rows, title="A1 — s+counter−1 estimate vs exact recount"))
    # the estimate never undercounts below s: sanity of the bookkeeping
    for _, nodes, exact, over, under in rows:
        assert exact + over + under == nodes


def test_a2_flow_vs_count_ranking(results_writer, benchmark):
    def measure():
        rows = []
        for workload in TABLE6:
            engine = engine_for(workload.dataset)
            flow = engine.search(workload.text, s=1)
            count = engine.search(workload.text, s=1,
                                  ranker=rank_by_keyword_count)
            rows.append((workload.qid,
                         response_rank_score(flow),
                         response_rank_score(count)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("ablation_ranking", render_table(
        ["Query", "potential-flow rank score", "count-only rank score"],
        rows, title="A2 — ranking model ablation"))
    flow_mean = sum(row[1] for row in rows) / len(rows)
    count_mean = sum(row[2] for row in rows) / len(rows)
    # the flow model must not be worse on average; it breaks count ties
    assert flow_mean >= count_mean - 1e-9


@pytest.mark.parametrize("variant", ["no_stemming", "no_tags"])
def test_a3_indexing_variants(variant, results_writer, benchmark):
    repository = load_dataset("mondial")

    def build_and_run():
        if variant == "no_stemming":
            engine = GKSEngine(repository,
                               analyzer=Analyzer(use_stemming=False))
        else:
            engine = GKSEngine(repository, index_tags=False)
        baseline = GKSEngine(repository)
        rows = []
        for workload in TABLE6:
            if workload.dataset != "mondial":
                continue
            rows.append((workload.qid,
                         len(baseline.search(workload.text, s=1)),
                         len(engine.search(workload.text, s=1))))
        return rows

    rows = benchmark.pedantic(build_and_run, rounds=1, iterations=1)
    results_writer(f"ablation_indexing_{variant}", render_table(
        ["Query", "#GKS (full index)", f"#GKS ({variant})"], rows,
        title=f"A3 — indexing ablation: {variant}"))
    if variant == "no_tags":
        by_qid = {row[0]: row for row in rows}
        # QM2 searches the element names 'country' and 'name': dropping
        # tag indexing must shrink its response
        assert by_qid["QM2"][2] < by_qid["QM2"][1]
