"""Bibliographic search over a DBLP-style corpus (the paper's Example 2).

The query names four authors; three of them co-author articles, the
fourth (Banerjee) never appears with them.  An LCA-based system would
collapse to the DBLP root because of that one 'wrong' keyword — GKS
instead returns a ranked list of the articles by *any subset* of the
authors, with the tight three-author articles on top, and mines DI that
reveals the most relevant year, venue and co-author.

Run:  python examples/bibliography_search.py
"""

from repro import GKSEngine, load_dataset
from repro.baselines import slca_indexed_lookup_eager


def main() -> None:
    print("generating synthetic DBLP corpus ...")
    engine = GKSEngine(load_dataset("dblp"))
    stats = engine.index.stats
    print(f"indexed {stats.total_nodes} nodes, "
          f"{stats.entity_nodes} entities\n")

    query_text = ('"Peter Buneman" "Wenfei Fan" "Scott Weinstein" '
                  '"Prithviraj Banerjee"')
    response = engine.search(query_text, s=1)
    print(f"GKS  : {len(response)} article(s) for any of the four "
          f"authors (s=1)")

    # what an LCA technique would do with the same keywords
    query_all = engine.parse_query(query_text, s=4)
    slca = slca_indexed_lookup_eager(engine.index, query_all)
    labels = [engine.node_at(dewey).tag if engine.node_at(dewey) else "?"
              for dewey in slca]
    print(f"SLCA : {len(slca)} node(s): {labels} — the useless root, "
          f"or nothing\n")

    print("top 6 GKS results (trio articles first, the crowded one "
          "ranks lower):")
    for node in response.top(6):
        print(" ", engine.describe(node))
    print()

    print("DI in the context of the query:")
    for insight in engine.insights(response, top=6):
        print(f"  {insight.render()}  weight={insight.weight:.2f}")
    print()

    # the §7.4 refinement case: QD1 + DI finds the productive co-author
    print("§7.4 refinement case:")
    qd1 = engine.search('"Dimitrios Georgakopoulos" "Joe D. Morrison"',
                        s=1)
    print(f"  QD1 returns {len(qd1)} node(s); joint articles: "
          f"{sum(1 for n in qd1 if n.distinct_keywords == 2)}")
    report = engine.insights(qd1, top=10)
    coauthors = [insight for insight in report
                 if insight.path[-1] == "author"]
    print(f"  DI suggests co-author(s): "
          f"{[insight.value for insight in coauthors][:3]}")
    refined = engine.search(
        '"Dimitrios Georgakopoulos" "Marek Rusinkiewicz"', s=2)
    print(f"  refined query finds {len(refined)} joint article(s) "
          f"(the paper found 10)")


if __name__ == "__main__":
    main()
