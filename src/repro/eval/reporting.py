"""Plain-text table/series rendering for the experiment harness.

Every benchmark prints its table in the same fixed-width style so the
paper-vs-measured comparison in EXPERIMENTS.md is easy to eyeball.
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width table with a header rule; floats get 3 decimals."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[column])
                           for column, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(widths[column])
                               for column, value in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[tuple[object, object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A figure as a two-column series (x, y) — one line per point."""
    rows = [(x, y) for x, y in points]
    return render_table([x_label, y_label], rows, title=name)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
