"""Serving configuration (the :class:`ServeConfig` API).

The serving layer mirrors :class:`repro.core.config.EngineConfig`'s
shape: one frozen, validated record of every tuning knob, with a
``replace`` that rejects typo'd field names at call time instead of
silently ignoring them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServeConfig:
    """Every serving tuning knob in one frozen, validated record.

    Attributes
    ----------
    workers:
        Worker threads executing searches off the admission queue.
    queue_capacity:
        Bound on requests waiting for a worker.  Admission beyond it is
        load-shed with :class:`~repro.errors.Overloaded` — the broker
        never buffers unbounded backlog.
    deadline_s:
        Default per-request deadline applied when a request brings none;
        ``None`` leaves deadline-less requests unbudgeted (they then use
        the engine's own ``config.budget``, exactly like a direct call).
    ttl_s:
        Lifetime of entries in the serve-side TTL result cache; ``None``
        disables the cache.  The TTL cache sits *above* the engine LRU:
        it absorbs repeat traffic without even dispatching to a worker.
    ttl_capacity:
        Maximum entries in the TTL cache (oldest evicted first).
    coalesce:
        Whether identical in-flight requests share one engine search
        (singleflight).  Disable for timing harnesses that need every
        submission to do real work.
    trace:
        Capture a per-request span tree for every served search (the
        engine retains them in :meth:`GKSEngine.recent_traces`).
    """

    workers: int = 4
    queue_capacity: int = 64
    deadline_s: float | None = None
    ttl_s: float | None = None
    ttl_capacity: int = 256
    coalesce: bool = True
    trace: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1: {self.workers}")
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1: {self.queue_capacity}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be > 0: {self.deadline_s}")
        if self.ttl_s is not None and self.ttl_s <= 0:
            raise ConfigError(f"ttl_s must be > 0: {self.ttl_s}")
        if self.ttl_capacity < 1:
            raise ConfigError(
                f"ttl_capacity must be >= 1: {self.ttl_capacity}")

    def replace(self, **overrides) -> "ServeConfig":
        """A copy with *overrides* applied (re-validated)."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigError(
                f"unknown ServeConfig field(s): {sorted(unknown)}")
        return replace(self, **overrides)
