"""Schema inference and schema-level categorization (§2.2 future work)."""

from repro.schema.categorize import (TypeCategory, categorize_by_schema,
                                     categorize_schema,
                                     compare_with_instance_level)
from repro.schema.indexing import build_schema_index
from repro.schema.inference import (ElementType, Schema, TagPath,
                                    infer_schema)

__all__ = [
    "ElementType", "Schema", "TagPath", "TypeCategory",
    "build_schema_index", "categorize_by_schema", "categorize_schema",
    "compare_with_instance_level", "infer_schema",
]
