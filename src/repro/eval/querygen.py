"""Seeded random query workloads.

The Table 6 workload is hand-crafted; robustness and latency
distributions need *volume*.  The generator draws keywords from an
index's actual vocabulary with controllable selectivity (how frequent
the chosen keywords are), mixes in phrase keywords built from adjacent
posting content, and produces deterministic workloads given a seed —
the `bench_robustness` fuzz harness runs hundreds of them per corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.core.query import Query
from repro.index.builder import GKSIndex


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs for one generated workload."""

    queries: int = 50
    min_keywords: int = 1
    max_keywords: int = 6
    #: 0.0 = only the rarest vocabulary, 1.0 = only the most frequent
    selectivity: float = 0.5
    #: probability that a keyword is dropped for a nonsense token
    noise: float = 0.1
    seed: int = 0


def vocabulary_by_frequency(index: GKSIndex) -> list[str]:
    """Vocabulary sorted rare → frequent (ties broken alphabetically)."""
    return [keyword for _, keyword in sorted(
        (index.inverted.document_frequency(keyword), keyword)
        for keyword in index.inverted.vocabulary)]


def generate_queries(index: GKSIndex,
                     spec: WorkloadSpec = WorkloadSpec()) -> list[Query]:
    """A deterministic batch of queries against *index*'s vocabulary."""
    if spec.min_keywords < 1 or spec.max_keywords < spec.min_keywords:
        raise ValidationError(f"bad keyword bounds in {spec}")
    if not 0.0 <= spec.selectivity <= 1.0:
        raise ValidationError(f"selectivity must be in [0, 1]: {spec}")

    vocabulary = vocabulary_by_frequency(index)
    if not vocabulary:
        return []
    rng = random.Random(spec.seed)
    queries: list[Query] = []
    for _ in range(spec.queries):
        count = rng.randint(spec.min_keywords, spec.max_keywords)
        keywords: list[str] = []
        attempts = 0
        while len(keywords) < count and attempts < count * 10:
            attempts += 1
            if rng.random() < spec.noise:
                keyword = f"zz{rng.randrange(10 ** 6)}"
            else:
                keyword = vocabulary[_biased_index(rng, len(vocabulary),
                                                   spec.selectivity)]
            if keyword not in keywords:
                keywords.append(keyword)
        if not keywords:
            continue
        s = rng.randint(1, len(keywords))
        queries.append(Query.of(keywords, s=s))
    return queries


def _biased_index(rng: random.Random, size: int,
                  selectivity: float) -> int:
    """Draw an index biased toward the frequent end by *selectivity*."""
    u = rng.random()
    # selectivity 1 → u^0.25 clusters near 1 (frequent end);
    # selectivity 0 → u^4 clusters near 0 (rare end)
    exponent = 4.0 ** (1.0 - 2.0 * selectivity)
    position = int((u ** exponent) * size)
    return min(position, size - 1)
