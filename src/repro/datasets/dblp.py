"""Synthetic DBLP corpus (paper §7 workloads QD1–QD4, §7.4, §7.6).

Shape of the real DBLP: a flat root with millions of bibliographic entries
(``<article>``/``<inproceedings>``), each carrying repeating ``<author>``
elements plus attribute children (``title``, ``year``, ``journal`` or
``booktitle``, ``pages``).  Entries with two or more authors are entity
nodes; single-author entries are connecting nodes (§7.2's observation).

Planted structure, mirroring what the paper reports on the real data:

* QD2 (Example 2): Buneman, Fan and Weinstein co-author five entries —
  four with just the three of them (year 2001, journal *SIGMOD Record*)
  and one with many co-authors (ranked lower by potential flow), among
  them *Alok N. Choudhary*.  *Prithviraj Banerjee* publishes prolifically
  in booktitle *ICPP* and never with the other three — DI should surface
  ``<year: 2001>``/``<journal: SIGMOD Record>``/``<booktitle: ICPP>``.
* QD1/§7.4: Georgakopoulos and Morrison share exactly one article, while
  Georgakopoulos and *Marek Rusinkiewicz* share ten — the DI-driven
  refinement case.
* QD3/QD4: each author pool gets a few joint entries (ICCD 1999,
  JACM/IBM Research Report 2001) so the queries return non-trivial
  overlaps.
* §7.6: Meynadier and Behm co-author exactly three ``<inproceedings>``,
  used by the hybrid-query experiment.
"""

from __future__ import annotations

from repro.datasets import names
from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode


def generate_dblp(scale: int = 1, seed: int = 0) -> XMLNode:
    """Build the synthetic DBLP tree; ~(420·scale + 60) entries."""
    synth = Synth(seed ^ 0xD31B)
    root = XMLNode("dblp", (0,))
    pool = names.synthetic_authors()

    _plant_qd2(root, synth)
    _plant_banerjee(root, synth, pool)
    _plant_qd1_refinement(root, synth, pool)
    _plant_qd3(root, synth, pool)
    _plant_qd4(root, synth, pool)
    _plant_hybrid(root, synth)
    _bulk_entries(root, synth, pool, count=420 * scale)
    return root


# ----------------------------------------------------------------------
# Entry construction
# ----------------------------------------------------------------------
def add_entry(root: XMLNode, synth: Synth, authors: list[str],
              kind: str = "article", title: str | None = None,
              year: str | None = None, venue: str | None = None) -> XMLNode:
    """Append one bibliographic entry in DBLP's element order."""
    entry = root.add_child(kind)
    entry.add_child("key", text=synth.code("conf/" if kind != "article"
                                           else "journals/"))
    for author in authors:
        entry.add_child("author", text=author)
    entry.add_child("title", text=title or synth.title())
    start, end = synth.pages()
    entry.add_child("pages", text=f"{start}-{end}")
    entry.add_child("year", text=year or synth.year())
    if kind == "article":
        entry.add_child("journal", text=venue or synth.pick(names.JOURNALS))
        entry.add_child("volume", text=str(synth.int_between(1, 40)))
        entry.add_child("number", text=str(synth.int_between(1, 6)))
    else:
        entry.add_child("booktitle",
                        text=venue or synth.pick(names.BOOKTITLES))
    return entry


# ----------------------------------------------------------------------
# Planted workloads
# ----------------------------------------------------------------------
def _plant_qd2(root: XMLNode, synth: Synth) -> None:
    trio = names.QD2_AUTHORS[:3]  # Buneman, Fan, Weinstein
    for _ in range(4):
        add_entry(root, synth, list(trio), kind="inproceedings",
                  year="2001", venue="SIGMOD")
        # a matching journal version feeds the <journal: SIGMOD Record> DI
        add_entry(root, synth, list(trio), kind="article", year="2001",
                  venue="SIGMOD Record")
    crowd = [names.DI_COAUTHOR, "Maria Rossi", "Wei Zhang", "Jonas Weber",
             "Olga Petrov", "Pedro Vargas"]
    add_entry(root, synth, list(trio) + crowd, kind="inproceedings",
              year="2001", venue="SIGMOD")


def _plant_banerjee(root: XMLNode, synth: Synth,
                    pool: list[str]) -> None:
    banerjee = names.QD2_AUTHORS[3]  # Prithviraj Banerjee
    for index in range(24):
        coauthors = [banerjee]
        if index % 3 == 0:
            coauthors.append(names.DI_COAUTHOR)
        if index % 4 == 0:
            coauthors.append(synth.pick(pool))
        add_entry(root, synth, coauthors, kind="inproceedings",
                  venue="ICPP")


def _plant_qd1_refinement(root: XMLNode, synth: Synth,
                          pool: list[str]) -> None:
    georgakopoulos, morrison = names.QD1_AUTHORS
    add_entry(root, synth, [georgakopoulos, morrison], kind="article",
              year="2000", venue="TCS")
    for _ in range(10):  # §7.4: ten joint articles after refinement
        add_entry(root, synth, [georgakopoulos,
                                names.REFINEMENT_COAUTHOR],
                  kind="article", venue="TCS")
    for _ in range(6):
        add_entry(root, synth, [morrison, synth.pick(pool)],
                  kind="article")


def _plant_qd3(root: XMLNode, synth: Synth, pool: list[str]) -> None:
    authors = names.QD3_AUTHORS
    add_entry(root, synth, authors[:5], kind="inproceedings", year="1999",
              venue="ICCD")  # Table 7: QD3's max keywords is 5
    for first, second in [(0, 1), (1, 2), (2, 3), (0, 3)]:
        add_entry(root, synth, [authors[first], authors[second]],
                  kind="inproceedings", year="1999", venue="ICCD")
    # never pair authors[4] (Georgakopoulos) with authors[5] (Morrison):
    # QD1 must keep exactly one joint article for that pair
    for triple in ([0, 1, 2], [1, 2, 3], [2, 3, 5]):
        add_entry(root, synth, [authors[i] for i in triple],
                  kind="inproceedings", year="1999", venue="ICCD")
    for author in authors:
        add_entry(root, synth, [author], kind="article", year="2001",
                  venue="TCS")


def _plant_qd4(root: XMLNode, synth: Synth, pool: list[str]) -> None:
    authors = names.QD4_AUTHORS
    add_entry(root, synth, authors[:6], kind="article", year="2001",
              venue="JACM", title="A relational model retrospective")
    for subset in (authors[:4], authors[2:6], authors[4:8]):
        add_entry(root, synth, list(subset), kind="article", year="2001",
                  venue="IBM Research Report")  # QD4 at s=4 stays non-empty
    for first, second in [(0, 2), (2, 4), (4, 6), (6, 7), (1, 3)]:
        add_entry(root, synth, [authors[first], authors[second]],
                  kind="article", year="2001", venue="IBM Research Report")
    for author in authors[4:]:
        add_entry(root, synth, [author, synth.pick(pool)], kind="article")


def _plant_hybrid(root: XMLNode, synth: Synth) -> None:
    pair = names.HYBRID_DBLP_AUTHORS
    pool = names.synthetic_authors()
    for _ in range(3):  # §7.6: exactly three joint <inproceedings>
        # "articles by first 2 authors had multiple other authors" — the
        # co-author crowd is what makes the SIGMOD pair rank above them.
        crowd = synth.sample(pool, synth.int_between(2, 4))
        add_entry(root, synth, list(pair) + crowd, kind="inproceedings",
                  venue="EDBT")


def _bulk_entries(root: XMLNode, synth: Synth, pool: list[str],
                  count: int) -> None:
    for _ in range(count):
        author_count = synth.int_between(1, 6)
        authors = []
        while len(authors) < author_count:
            author = pool[synth.skewed_index(len(pool))]
            if author not in authors:
                authors.append(author)
        kind = "inproceedings" if synth.chance(0.55) else "article"
        add_entry(root, synth, authors, kind=kind)
