"""Tests for JSON export of responses, insights and sessions."""

import json

import pytest

from repro.core.engine import GKSEngine
from repro.core.export import (insights_to_dict, node_to_dict,
                               response_to_dict, session_to_dict)
from repro.core.session import ExplorationSession
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def engine():
    return GKSEngine(load_dataset("figure2a"))


@pytest.fixture(scope="module")
def response(engine):
    return engine.search("karen mike john student", s=2)


class TestNodeExport:
    def test_fields_present(self, engine, response):
        payload = node_to_dict(response[0], engine.repository)
        assert payload["dewey"] == "0.1.1.0"
        assert payload["tag"] == "Course"
        assert payload["tag_path"][0] == "Dept"
        assert payload["is_lce"] is True
        assert payload["score"] > 0

    def test_without_repository(self, response):
        payload = node_to_dict(response[0])
        assert "tag" not in payload
        assert "dewey" in payload


class TestResponseExport:
    def test_json_serializable(self, engine, response):
        payload = response_to_dict(response, engine.repository)
        text = json.dumps(payload)
        assert "karen" in text

    def test_structure(self, engine, response):
        payload = response_to_dict(response, engine.repository)
        assert payload["query"]["s"] == 2
        assert len(payload["nodes"]) == len(response)
        assert payload["profile"]["merged_list_size"] == \
            response.profile.merged_list_size
        assert set(payload["profile"]["stages"]) == \
            {"merge", "lcp", "lce", "rank"}


class TestInsightExport:
    def test_insights_payload(self, engine, response):
        report = engine.insights(response)
        payload = insights_to_dict(report)
        json.dumps(payload)
        assert payload["insights"]
        first = payload["insights"][0]
        assert "Data Mining" in first["render"]
        assert first["weight"] > 0
        assert payload["weighted_keywords"]


class TestSessionExport:
    def test_whole_session_round_trips_through_json(self, engine):
        session = ExplorationSession(engine)
        session.run("karen mike", note="start")
        session.drill_down()
        payload = session_to_dict(session, engine.repository)
        decoded = json.loads(json.dumps(payload))
        assert len(decoded["steps"]) == 2
        assert decoded["steps"][0]["note"] == "start"
        assert decoded["steps"][1]["response"]["nodes"]
