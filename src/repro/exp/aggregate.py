"""Collect per-run artifacts into one aggregate table (JSON/CSV/MD).

The aggregate is the experiment's *committed* face: one row per run,
joining the run's factor assignment to its load outcomes and a few
server-side deltas worth gating on.  ``aggregate.json`` is the machine
form the :mod:`~repro.exp.compare` gate consumes; ``aggregate.csv`` and
``aggregate.md`` are the same rows for spreadsheets and review diffs.

Aggregation reads only what the runner persisted — it can re-run over
an artifact tree long after the processes that produced it are gone.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import ConfigError

#: Row fields in column order (factor columns are inserted after run_id).
OUTCOME_FIELDS = ("submitted", "completed", "shed", "timeouts", "errors",
                  "retries", "throughput_rps", "p50_ms", "p95_ms", "p99_ms")
#: metrics_delta samples lifted into the row when present (unlabelled).
DELTA_FIELDS = (
    ("gks_serve_requests_total", "serve_requests"),
    ("gks_wal_appends_total", "wal_appends"),
    ("gks_store_flushed_documents_total", "flushed_documents"),
)


def _load_json(path: Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read artifact {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(f"cannot parse artifact {path}: {exc}") from exc


def _delta_total(delta: dict, name: str) -> float:
    """Sum every series of one delta'd sample family."""
    entry = delta.get(name)
    if not entry:
        return 0.0
    return sum(entry.get("series", {}).values())


def row_for_run(run_dir: Path) -> dict:
    """One aggregate row from one run's artifact directory."""
    run = _load_json(run_dir / "run.json")
    report = _load_json(run_dir / "report.json")
    delta_path = run_dir / "metrics_delta.json"
    delta = _load_json(delta_path) if delta_path.exists() else {}
    latency = report.get("latency_s", {})
    row = {
        "run_id": run["run_id"],
        "repetition": run.get("repetition", 0),
        **{f"factor:{name}": value
           for name, value in sorted(run.get("factors", {}).items())},
        "mode": report.get("mode", ""),
        "submitted": report.get("submitted", 0),
        "completed": report.get("completed", 0),
        "shed": report.get("shed", 0),
        "timeouts": report.get("timeouts", 0),
        "errors": report.get("errors", 0),
        "retries": report.get("retries", 0),
        "throughput_rps": round(report.get("throughput_rps", 0.0), 3),
        "p50_ms": round(latency.get("p50", 0.0) * 1000.0, 3),
        "p95_ms": round(latency.get("p95", 0.0) * 1000.0, 3),
        "p99_ms": round(latency.get("p99", 0.0) * 1000.0, 3),
    }
    for sample_name, column in DELTA_FIELDS:
        row[column] = _delta_total(delta, sample_name)
    return row


def aggregate_runs(out_dir: str | Path) -> dict:
    """Collect every run under ``<out>/runs`` into the aggregate tree."""
    out_dir = Path(out_dir)
    runs_dir = out_dir / "runs"
    if not runs_dir.is_dir():
        raise ConfigError(f"no runs directory under {out_dir} — did the "
                          f"experiment run?")
    run_dirs = sorted(path for path in runs_dir.iterdir()
                      if (path / "run.json").exists())
    if not run_dirs:
        raise ConfigError(f"no completed runs under {runs_dir}")
    spec_path = out_dir / "spec.json"
    spec = _load_json(spec_path) if spec_path.exists() else {}
    return {
        "experiment": spec.get("name", out_dir.name),
        "mode": spec.get("mode", ""),
        "rows": [row_for_run(run_dir) for run_dir in run_dirs],
    }


def _columns(rows: list[dict]) -> list[str]:
    """Stable column order: id, factors, then outcome fields."""
    factor_columns = sorted(
        {column for row in rows for column in row
         if column.startswith("factor:")})
    head = ["run_id", "repetition", *factor_columns, "mode"]
    tail = [field for field in
            (*OUTCOME_FIELDS, *(column for _, column in DELTA_FIELDS))
            if any(field in row for row in rows)]
    return head + tail


def write_csv(aggregate: dict, path: str | Path) -> Path:
    path = Path(path)
    rows = aggregate["rows"]
    columns = _columns(rows)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def render_markdown(aggregate: dict) -> str:
    """The aggregate as a GitHub-flavoured markdown table."""
    rows = aggregate["rows"]
    columns = _columns(rows)
    lines = [
        f"# Experiment `{aggregate.get('experiment', '?')}`",
        "",
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(column, ""))
                                       for column in columns) + " |")
    return "\n".join(lines) + "\n"


def write_aggregate(out_dir: str | Path) -> dict:
    """Aggregate *out_dir* and persist json + csv + md next to the runs.

    Returns the aggregate tree (also written to ``aggregate.json``).
    """
    out_dir = Path(out_dir)
    aggregate = aggregate_runs(out_dir)
    (out_dir / "aggregate.json").write_text(
        json.dumps(aggregate, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    write_csv(aggregate, out_dir / "aggregate.csv")
    (out_dir / "aggregate.md").write_text(render_markdown(aggregate),
                                          encoding="utf-8")
    return aggregate
