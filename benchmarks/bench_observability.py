"""Observability overhead: traced vs. untraced search must be ~free.

The tracing layer is only trustworthy if measuring a query does not
materially change what is measured.  This bench runs the same query mix
on the toy corpus three ways — untraced (the no-op tracer default),
noop-explicit, and fully traced — and writes the comparison to
``benchmarks/results/BENCH_observability.json``.  The acceptance bar is
traced overhead below 10% of the untraced median.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset
from repro.obs.trace import NOOP_TRACER, Tracer

RESULTS_PATH = Path(__file__).parent / "results" / \
    "BENCH_observability.json"

QUERIES = [("karen mike", 1), ("karen mining students", 2),
           ("databases courses name", 1)]
ROUNDS = 200


def _engine() -> GKSEngine:
    return GKSEngine(load_dataset("figure2a"))


def _run_round(engine: GKSEngine, tracer) -> float:
    """Wall seconds for one pass over the query mix."""
    started = time.perf_counter()
    for text, s in QUERIES:
        engine.search(text, s=s, use_cache=False, tracer=tracer)
    return time.perf_counter() - started


def _interleaved_medians(engine: GKSEngine) -> tuple[float, float, float]:
    """Median ms per round for (untraced, noop, traced).

    The three variants run back-to-back within each round so machine
    noise (frequency scaling, interruptions) lands on all of them
    equally instead of biasing whichever variant ran during a slow
    phase.
    """
    untraced, noop, traced = [], [], []
    for _ in range(ROUNDS):
        untraced.append(_run_round(engine, None) * 1000.0)
        noop.append(_run_round(engine, NOOP_TRACER) * 1000.0)
        traced.append(_run_round(engine, Tracer()) * 1000.0)
    return (statistics.median(untraced), statistics.median(noop),
            statistics.median(traced))


def test_observability_overhead_report():
    engine = _engine()
    # warm up interpreter caches so the first variant isn't penalised
    _run_round(engine, None)
    _run_round(engine, Tracer())

    untraced_ms, noop_ms, traced_ms = _interleaved_medians(engine)

    overhead_pct = (traced_ms - untraced_ms) / untraced_ms * 100.0
    noop_pct = (noop_ms - untraced_ms) / untraced_ms * 100.0
    report = {
        "dataset": "figure2a",
        "queries": [text for text, _ in QUERIES],
        "rounds": ROUNDS,
        "untraced_ms_per_round": round(untraced_ms, 4),
        "noop_tracer_ms_per_round": round(noop_ms, 4),
        "traced_ms_per_round": round(traced_ms, 4),
        "noop_overhead_pct": round(noop_pct, 2),
        "traced_overhead_pct": round(overhead_pct, 2),
        "acceptance": "traced overhead < 10% of untraced median",
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))

    # generous in-test guard (the JSON carries the precise number; CI
    # machines are noisy enough that a hard 10% assert would flake)
    assert overhead_pct < 50.0, report


def test_traced_results_identical():
    """Tracing must never change what a query returns."""
    engine = _engine()
    for text, s in QUERIES:
        plain = engine.search(text, s=s, use_cache=False)
        traced = engine.search(text, s=s, use_cache=False,
                               tracer=Tracer())
        assert plain.deweys == traced.deweys
        assert [node.score for node in plain] == \
            [node.score for node in traced]
