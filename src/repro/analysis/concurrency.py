"""Concurrency lint rules (C001-C003) and the lock inventory.

The rules mechanize the lock discipline the serving and durability
paths document in prose:

========  ==========================================================
``C001``  A lock held across an engine call: inside a ``with`` block
          whose context expression is a lock attribute (name ending
          in ``lock``), a call like ``self.engine.search(...)`` /
          ``self._engine.add_document(...)`` dispatches into the
          engine while the lock is held.  The ServerCore contract —
          "the lock is never held across an engine call" — as a
          checked property instead of a docstring promise.
``C002``  A write to a guard-declared field outside its lock: a lock
          construction site may carry a ``# guards: a, b, c``
          annotation naming the fields it protects; any assignment,
          augmented assignment, delete or mutating method call on a
          guarded ``self.<field>`` must then sit lexically inside a
          ``with self.<lock>`` block.  ``__init__`` is exempt (the
          object is not yet shared), as are methods whose name ends
          in ``_locked`` or whose ``def`` line carries a
          ``# holds: <lock>`` marker — the convention for "caller
          holds the lock".  This is the static half of the
          check-then-act audit: the racy *act* is always a write.
``C003``  Module-level mutable state (list/dict/set/deque literal or
          constructor) in ``repro.serve``, ``repro.index.wal`` or
          ``repro.index.segments`` without a declared guard — those
          modules run under the worker pool, where an unguarded
          module global is a data race by construction.  Declare the
          serialization story with a ``# guards:`` comment on the
          assignment line (or suppress with ``# gks: ignore[C003]``).
========  ==========================================================

The ``# guards:`` annotation also feeds :func:`collect_locks`, the
``gks lint --locks`` inventory: every ``threading.Lock``/``RLock`` (or
:func:`repro.obs.locks.new_lock`/``new_rlock``) construction site, its
owner, its declared protected fields, and how many ``with`` blocks in
the module take it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.lint import ModuleInfo, Rule, register

#: ``# guards: field, other_field`` — declared on (or immediately above)
#: a lock construction site or a module-level mutable assignment.
_GUARDS_RE = re.compile(r"#\s*guards:\s*(.*)$")

#: ``# holds: _lock`` on a ``def`` line — the method is documented to be
#: called with the lock already held (C002 trusts the caller).
_HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Engine entry points C001 refuses to see under a held lock.
_ENGINE_CALLS = ("search", "search_top_k", "add_document", "flush",
                 "compact", "submit")

#: Receiver identifiers that mark a call target as "the engine".
_ENGINE_NAMES = ("engine", "_engine")

#: Constructors that build lock objects (lock inventory + C002 anchors).
_LOCK_FACTORIES = ("Lock", "RLock", "new_lock", "new_rlock")

#: In-place mutating methods (same list the fork-safety rule uses).
_MUTATING_METHODS = ("append", "extend", "insert", "add", "update",
                     "clear", "pop", "popitem", "setdefault", "remove",
                     "discard", "sort")

#: Modules whose module-level mutable state must declare its guard.
GUARDED_MODULE_PREFIXES = ("repro.serve", "repro.index.wal",
                           "repro.index.segments")


def _guards_on(module: ModuleInfo, line: int) -> tuple[str, ...] | None:
    """Fields declared by a ``# guards:`` comment at *line*.

    Looks on the statement's own line first, then walks up contiguous
    comment-only lines (so a long field list can sit above the
    assignment).  Returns ``None`` when no annotation is present.
    """
    fields: list[str] = []
    found = False
    match = _GUARDS_RE.search(module.lines[line - 1]) \
        if 1 <= line <= len(module.lines) else None
    if match is not None:
        found = True
        fields.extend(_split_fields(match.group(1)))
    cursor = line - 1
    while cursor >= 1:
        text = module.lines[cursor - 1].strip()
        if not text.startswith("#"):
            break
        match = _GUARDS_RE.search(text)
        if match is not None:
            found = True
            fields = _split_fields(match.group(1)) + fields
        cursor -= 1
    return tuple(fields) if found else None


def _split_fields(raw: str) -> list[str]:
    return [token.strip() for token in raw.split(",") if token.strip()]


def _is_lock_call(node: ast.AST) -> bool:
    """Does *node* construct a lock (``threading.Lock()``, ``new_lock``)?"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _lock_attr_of(item: ast.expr) -> str | None:
    """The attribute/name a ``with`` context takes, if it looks lock-ish."""
    if isinstance(item, ast.Attribute) and item.attr.endswith("lock"):
        return item.attr
    if isinstance(item, ast.Name) and item.id.endswith("lock"):
        return item.id
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` when *node* is exactly ``self.attr``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


# ----------------------------------------------------------------------
# C001 — no lock held across an engine call
# ----------------------------------------------------------------------
@register
class LockAcrossEngineCallRule(Rule):
    """C001 — engine dispatch inside a ``with <lock>:`` block."""

    rule_id = "C001"
    title = ("no lock held across an engine call (search/add_document/"
             "flush/... on an engine receiver inside `with <lock>:`)")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.role != "library":
            return
        for node in module.walk():
            if not isinstance(node, ast.With):
                continue
            locks = [lock for item in node.items
                     if (lock := _lock_attr_of(item.context_expr))]
            if not locks:
                continue
            for inner in node.body:
                yield from self._engine_calls_in(module, inner, locks[0])

    def _engine_calls_in(self, module: ModuleInfo, node: ast.AST,
                         lock: str) -> Iterator[Finding]:
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _ENGINE_CALLS
                    and self._engine_receiver(func.value)):
                yield self.finding(
                    module, child.lineno,
                    f"engine call .{func.attr}() while holding {lock}; "
                    f"engine work must run outside the lock (snapshot "
                    f"state under the lock, dispatch after releasing)")

    @staticmethod
    def _engine_receiver(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _ENGINE_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in _ENGINE_NAMES
        return False


# ----------------------------------------------------------------------
# C002 — guarded fields written outside their lock
# ----------------------------------------------------------------------
@register
class GuardedWriteRule(Rule):
    """C002 — writes to ``# guards:``-declared fields need the lock."""

    rule_id = "C002"
    title = ("fields declared by a `# guards:` lock annotation may only "
             "be written under `with self.<lock>:` (check-then-act "
             "outside the lock is a race)")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.role != "library":
            return
        for node in module.walk():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        guards = self._declared_guards(module, cls)
        if not guards:
            return
        field_to_lock = {field: lock
                         for lock, fields in guards.items()
                         for field in fields}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction precedes sharing
            held = self._declared_held(module, method)
            yield from self._check_body(module, method.body, field_to_lock,
                                        held)

    def _declared_guards(self, module: ModuleInfo, cls: ast.ClassDef
                         ) -> dict[str, tuple[str, ...]]:
        """lock attribute -> guarded fields, from ``# guards:`` comments."""
        guards: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(cls):
            if not (isinstance(node, ast.Assign)
                    and _is_lock_call(node.value)):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                fields = _guards_on(module, node.lineno)
                if fields:
                    guards[attr] = fields
        return guards

    @staticmethod
    def _declared_held(module: ModuleInfo, method: ast.FunctionDef
                       ) -> set[str]:
        """Locks the method is documented to run under."""
        held: set[str] = set()
        if method.name.endswith("_locked"):
            held.add("*")  # suffix convention: every guard satisfied
        if 1 <= method.lineno <= len(module.lines):
            match = _HOLDS_RE.search(module.lines[method.lineno - 1])
            if match is not None:
                held.add(match.group(1))
        return held

    def _check_body(self, module: ModuleInfo, body: Sequence[ast.stmt],
                    field_to_lock: dict[str, str],
                    held: set[str]) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, ast.With):
                taken = {lock for item in statement.items
                         if (lock := _lock_attr_of(item.context_expr))}
                yield from self._check_body(module, statement.body,
                                            field_to_lock, held | taken)
                continue
            for line, field in self._writes_in(statement):
                lock = field_to_lock.get(field)
                if lock is None:
                    continue
                if lock in held or "*" in held:
                    continue
                yield self.finding(
                    module, line,
                    f"self.{field} is guarded by self.{lock} "
                    f"(# guards: declaration) but written outside "
                    f"`with self.{lock}:`; wrap the write, or mark the "
                    f"method `# holds: {lock}` / suffix it `_locked` if "
                    f"the caller holds the lock")
            yield from self._check_nested(module, statement, field_to_lock,
                                          held)

    def _check_nested(self, module: ModuleInfo, statement: ast.stmt,
                      field_to_lock: dict[str, str],
                      held: set[str]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.With):
                taken = {lock for item in child.items
                         if (lock := _lock_attr_of(item.context_expr))}
                yield from self._check_body(module, child.body,
                                            field_to_lock, held | taken)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue  # nested defs have their own calling context
            elif isinstance(child, ast.stmt):
                yield from self._check_nested(module, child, field_to_lock,
                                             held)

    @staticmethod
    def _writes_in(statement: ast.stmt) -> Iterator[tuple[int, str]]:
        """(line, field) for every direct write to ``self.<field>``.

        Walks the statement but not into nested ``with`` blocks (those
        are re-checked with the taken lock added) or nested function
        definitions.
        """
        stack: list[ast.AST] = [statement]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.With, ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.Lambda)):
                if node is not statement:
                    continue
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    attr = _self_attr(base)
                    if attr is not None:
                        yield node.lineno, attr
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    attr = _self_attr(base)
                    if attr is not None:
                        yield node.lineno, attr
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS):
                attr = _self_attr(node.func.value)
                if attr is not None:
                    yield node.lineno, attr
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# C003 — unguarded module-level mutable state in concurrent modules
# ----------------------------------------------------------------------
@register
class UnguardedModuleStateRule(Rule):
    """C003 — serve/wal/segments module globals must declare a guard."""

    rule_id = "C003"
    title = ("module-level mutable state in repro.serve / repro.index."
             "wal / repro.index.segments must carry a `# guards:` "
             "declaration naming what serializes access")

    _FACTORY_NAMES = ("list", "dict", "set", "defaultdict", "deque",
                      "OrderedDict")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module is None or module.tree is None:
            return
        if not module.module.startswith(GUARDED_MODULE_PREFIXES):
            return
        for node in ast.iter_child_nodes(module.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not self._is_mutable(value):
                continue
            if _guards_on(module, node.lineno) is not None:
                continue
            plain = [target.id for target in targets
                     if isinstance(target, ast.Name)]
            # dunders (`__all__`) are interpreter/protocol slots, frozen
            # by convention after import — not shared mutable state
            if plain and all(name.startswith("__") and name.endswith("__")
                             for name in plain):
                continue
            names = ", ".join(plain) or "<target>"
            yield self.finding(
                module, node.lineno,
                f"module-level mutable {names} in {module.module} has "
                f"no declared guard; worker threads share this module — "
                f"add `# guards: <what serializes access>` or move the "
                f"state into an instance")

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in self._FACTORY_NAMES


# ----------------------------------------------------------------------
# Lock inventory (``gks lint --locks``)
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class LockSite:
    """One lock construction site, as the inventory reports it."""

    path: str
    line: int
    owner: str          # "ClassName.attr" or a module-level name
    kind: str           # Lock / RLock / new_lock / new_rlock
    name: str           # the new_lock("...") label, "" for raw locks
    guards: tuple[str, ...]
    with_sites: int     # `with` blocks in the module taking this lock

    def render(self) -> str:
        guarded = ", ".join(self.guards) if self.guards else "(undeclared)"
        label = f" name={self.name!r}" if self.name else ""
        return (f"{self.path}:{self.line}: {self.owner} [{self.kind}"
                f"{label}] with-sites={self.with_sites} "
                f"guards: {guarded}")

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "owner": self.owner,
                "kind": self.kind, "name": self.name,
                "guards": list(self.guards),
                "with_sites": self.with_sites}


def collect_locks(modules: Sequence[ModuleInfo]) -> list[LockSite]:
    """Every lock construction site in *modules*, sorted."""
    sites: list[LockSite] = []
    for module in modules:
        if module.tree is None:
            continue
        with_counts = _with_counts(module.tree)
        for owner_prefix, node in _assignments(module.tree):
            if not (isinstance(node, ast.Assign)
                    and _is_lock_call(node.value)):
                continue
            func = node.value.func
            kind = func.attr if isinstance(func, ast.Attribute) else func.id
            label = ""
            if (kind in ("new_lock", "new_rlock") and node.value.args
                    and isinstance(node.value.args[0], ast.Constant)):
                label = str(node.value.args[0].value)
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    owner = f"{owner_prefix}.{attr}" if owner_prefix \
                        else attr
                    key = attr
                elif isinstance(target, ast.Name):
                    owner = (f"{owner_prefix}.{target.id}"
                             if owner_prefix else target.id)
                    key = target.id
                else:
                    continue
                guards = _guards_on(module, node.lineno) or ()
                sites.append(LockSite(
                    path=str(module.path), line=node.lineno, owner=owner,
                    kind=kind, name=label, guards=tuple(guards),
                    with_sites=with_counts.get(key, 0)))
    return sorted(sites)


def _assignments(tree: ast.AST) -> Iterator[tuple[str, ast.Assign]]:
    """(owning class or "", assignment) for every Assign in *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for child in ast.walk(node):
                if isinstance(child, ast.Assign):
                    yield node.name, child
    class_assigns = {id(child) for node in ast.walk(tree)
                     if isinstance(node, ast.ClassDef)
                     for child in ast.walk(node)
                     if isinstance(child, ast.Assign)}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and id(node) not in class_assigns:
            yield "", node


def _with_counts(tree: ast.AST) -> dict[str, int]:
    """How many ``with`` blocks take each lock-ish attribute/name."""
    counts: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            lock = _lock_attr_of(item.context_expr)
            if lock is not None:
                counts[lock] = counts.get(lock, 0) + 1
    return counts
