"""Quickstart: index a small XML document and run Generic Keyword Search.

This walks the whole public API on the paper's own running example — the
university document of Fig. 2(a):

1. build an engine from XML text,
2. run an 'imperfect' keyword query (Example 3),
3. inspect the ranked response and its XML snippets,
4. read the Deeper analytical Insights (DI),
5. take a refinement suggestion and run it.

Run:  python examples/quickstart.py
"""

from repro import GKSEngine

UNIVERSITY_XML = """
<Dept>
  <Dept_Name>CS</Dept_Name>
  <Area>
    <Name>Databases</Name>
    <Courses>
      <Course>
        <Name>Data Mining</Name>
        <Students>
          <Student>Karen</Student><Student>Mike</Student>
          <Student>John</Student>
        </Students>
      </Course>
      <Course>
        <Name>Algorithms</Name>
        <Students>
          <Student>Karen</Student><Student>Julie</Student>
        </Students>
      </Course>
      <Course>
        <Name>AI</Name>
        <Students>
          <Student>Karen</Student><Student>Mike</Student>
          <Student>Serena</Student>
        </Students>
      </Course>
    </Courses>
  </Area>
</Dept>
"""


def main() -> None:
    engine = GKSEngine.from_texts([UNIVERSITY_XML])

    # Example 3's 'imperfect' query: the user lists students without
    # knowing who shares a course; harry is not even in the data.
    query = "student karen mike john harry"
    response = engine.search(query, s=2)

    print(f"query: {query!r} (s=2)")
    print(f"{len(response)} result node(s), "
          f"|SL|={response.profile.merged_list_size}, "
          f"{response.profile.seconds * 1000:.1f} ms\n")

    for node in response:
        print(engine.describe(node))
    print()

    top = response[0]
    print("top result as an XML chunk:")
    print(engine.snippet(top))

    # DI: the most relevant attribute keywords with their semantics —
    # the course names, exactly the paper's §2.3 discussion.
    print("deeper analytical insights (DI):")
    insights = engine.insights(response, top=5)
    for insight in insights:
        print(f"  {insight.render()}  "
              f"(weight {insight.weight:.2f}, "
              f"{insight.supporting_nodes} node(s))")
    print()

    # refinement: GKS suggests sub-queries from the observed keyword
    # distribution and DI-grown queries (§6.1)
    print("refinement suggestions:")
    for refinement in engine.refine(response, insights):
        keywords = " ".join(refinement.keywords)
        print(f"  [{refinement.kind.value:9s}] {keywords}  "
              f"(support {refinement.support:.2f})")

    # run the strongest subset refinement end-to-end
    best = engine.refine(response, insights)[0]
    refined = engine.search(best.as_query())
    print(f"\nrefined query {best.keywords} -> "
          f"{len(refined)} node(s); top: "
          f"{engine.describe(refined[0])}")


if __name__ == "__main__":
    main()
