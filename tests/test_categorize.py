"""Unit tests for the node categorization model (paper §2.2).

The Figure 2(a) examples are normative: every assertion here traces to a
sentence in the paper.
"""

from repro.datasets.toy import figure2a
from repro.index.categorize import (NodeCategory, StreamingCategorizer,
                                    categorize_tree)
from repro.xmltree.node import build_tree


def categories_by_path(root):
    records = categorize_tree(root)
    return {
        "/".join(node.tag_path()): records[node.dewey]
        for node in root.iter_subtree()
    }


class TestFigure2a:
    def test_paper_examples(self):
        root = figure2a()
        records = categorize_tree(root)
        by_dewey = {node.dewey: records[node.dewey]
                    for node in root.iter_subtree()}
        # "<Name> (n0.1.0) is an attribute node"
        assert by_dewey[(0, 1, 0)].category is NodeCategory.ATTRIBUTE
        # "nodes with label <Student> are repeating nodes"
        assert by_dewey[(0, 1, 1, 0, 1, 0)].category is NodeCategory.REPEATING
        # "<Area> (n0.1) is an entity node"
        assert by_dewey[(0, 1)].category is NodeCategory.ENTITY
        # "<Course> nodes are the entity nodes" — and also repeating
        course = by_dewey[(0, 1, 1, 0)]
        assert course.category is NodeCategory.ENTITY
        assert course.is_repeating
        # "<Courses> (n0.1.1) is a connecting node"
        assert by_dewey[(0, 1, 1)].category is NodeCategory.CONNECTING

    def test_child_counts_recorded(self):
        root = figure2a()
        records = categorize_tree(root)
        assert records[(0, 1)].child_count == 2       # Name + Courses
        assert records[(0, 1, 1)].child_count == 3    # three Courses


class TestRules:
    def test_leaf_with_text_and_no_sibling_is_attribute(self):
        root = build_tree(("r", [("a", "x"), ("b", "y")]))
        records = categorize_tree(root)
        assert records[(0, 0)].category is NodeCategory.ATTRIBUTE
        assert records[(0, 1)].category is NodeCategory.ATTRIBUTE

    def test_text_leaf_with_same_label_sibling_is_repeating(self):
        # §2.2: "A node that directly contains its value and also has
        # siblings with the same XML tag is considered a repeating node"
        root = build_tree(("r", [("a", "x"), ("a", "y")]))
        records = categorize_tree(root)
        assert records[(0, 0)].category is NodeCategory.REPEATING
        assert records[(0, 1)].category is NodeCategory.REPEATING

    def test_entity_needs_attribute_and_repetition(self):
        root = build_tree(("r", [("name", "x"), ("item", "1"),
                                 ("item", "2")]))
        assert categorize_tree(root)[(0,)].category is NodeCategory.ENTITY

    def test_repetition_without_attribute_is_not_entity(self):
        root = build_tree(("r", [("item", "1"), ("item", "2")]))
        assert categorize_tree(root)[(0,)].category is \
            NodeCategory.CONNECTING

    def test_attribute_without_repetition_is_not_entity(self):
        # the paper: a <Course> with a single student would be a
        # connecting node, not an entity node (§2.2)
        root = build_tree(("Course", [
            ("Name", "Data Mining"),
            ("Students", [("Student", "Karen")]),
        ]))
        records = categorize_tree(root)
        assert records[(0,)].category is NodeCategory.CONNECTING
        # ... and its lone student is an attribute node
        assert records[(0, 1, 0)].category is NodeCategory.ATTRIBUTE

    def test_attribute_inside_repeating_node_does_not_qualify(self):
        # attributes inside a repeating node describe that repetition;
        # r has no attribute of its own → not an entity
        root = build_tree(("r", [
            ("item", [("name", "a"), ("x", "1")]),
            ("item", [("name", "b"), ("x", "2")]),
        ]))
        assert categorize_tree(root)[(0,)].category is \
            NodeCategory.CONNECTING

    def test_deep_repeating_group_with_separate_attribute(self):
        # <Area>-like: attribute under one child, repetition under another
        root = build_tree(("area", [
            ("name", "db"),
            ("courses", [("course", "a"), ("course", "b")]),
        ]))
        records = categorize_tree(root)
        assert records[(0,)].category is NodeCategory.ENTITY
        assert records[(0, 1)].category is NodeCategory.CONNECTING

    def test_attribute_and_group_under_same_child_is_not_entity(self):
        # LCA(attr, group) is the child, not the root → child is the entity
        root = build_tree(("r", [
            ("wrap", [("name", "x"), ("item", "1"), ("item", "2")]),
        ]))
        records = categorize_tree(root)
        assert records[(0,)].category is NodeCategory.CONNECTING
        assert records[(0, 0)].category is NodeCategory.ENTITY

    def test_empty_leaf_is_connecting(self):
        root = build_tree(("r", [("a",)]))
        assert categorize_tree(root)[(0, 0)].category is \
            NodeCategory.CONNECTING

    def test_dual_role_entity_and_repeating(self):
        root = build_tree(("r", [
            ("course", [("name", "a"), ("s", "1"), ("s", "2")]),
            ("course", [("name", "b"), ("s", "3"), ("s", "4")]),
        ]))
        records = categorize_tree(root)
        course = records[(0, 0)]
        assert course.category is NodeCategory.ENTITY
        assert course.is_repeating


class TestStreamingEquivalence:
    def test_streaming_matches_tree_walk(self):
        root = figure2a()
        categorizer = StreamingCategorizer()
        streamed = {}

        def walk(node):
            categorizer.start(node.dewey, node.tag)
            if node.has_text:
                categorizer.text(node.text)
            for child in node.children:
                walk(child)
            for record in categorizer.end():
                streamed[record.dewey] = record

        walk(root)
        assert streamed == categorize_tree(root)

    def test_records_emitted_once_per_node(self):
        root = figure2a()
        assert len(categorize_tree(root)) == \
            sum(1 for _ in root.iter_subtree())
