"""Simulated crowd-sourced feedback (paper §7.5).

The paper asked 40 users to compare GKS vs SLCA responses per query on a
1–4 scale (1 = "GKS very useful" … 4 = "SLCA very useful") and reports
89.6% of the 480 ratings on the GKS side.  A human panel is not available
to a reproduction, so we *model* the raters with the decision criteria the
paper's discussion attributes to them:

* an empty SLCA answer makes GKS the only useful system;
* an SLCA answer that is (near-)root carries no information — users favour
  GKS strongly;
* when SLCA returns focused nodes, preferences soften and some users
  prefer the precise AND-semantics answer;
* every rater carries idiosyncratic noise.

The simulation is deterministic given the seed and produces the same
histogram layout as the paper's §7.5 table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.results import GKSResponse
from repro.xmltree.dewey import Dewey


@dataclass(frozen=True)
class QueryComparison:
    """What the raters see for one query."""

    qid: str
    gks_count: int            # |RQ(s)| shown by GKS
    gks_top_keywords: int     # coverage of the top-ranked GKS node
    slca_count: int           # |SLCA| answer size
    slca_is_root: bool        # SLCA collapsed to a (near-)root node

    @classmethod
    def from_results(cls, qid: str, response: GKSResponse,
                     slca_nodes: list[Dewey]) -> "QueryComparison":
        top_keywords = (response.nodes[0].distinct_keywords
                        if response.nodes else 0)
        near_root = any(len(dewey) <= 2 for dewey in slca_nodes)
        return cls(qid=qid, gks_count=len(response),
                   gks_top_keywords=top_keywords,
                   slca_count=len(slca_nodes), slca_is_root=near_root)


@dataclass
class FeedbackTable:
    """Ratings histogram per query: columns 1–4 as in the §7.5 table."""

    users: int
    rows: dict[str, list[int]] = field(default_factory=dict)

    def add(self, qid: str, ratings: list[int]) -> None:
        histogram = [0, 0, 0, 0]
        for rating in ratings:
            histogram[rating - 1] += 1
        self.rows[qid] = histogram

    @property
    def total_ratings(self) -> int:
        return sum(sum(row) for row in self.rows.values())

    @property
    def gks_better(self) -> int:
        """Ratings 1 or 2 (the paper's "GKS-better" bucket)."""
        return sum(row[0] + row[1] for row in self.rows.values())

    @property
    def gks_better_rate(self) -> float:
        total = self.total_ratings
        return self.gks_better / total if total else 0.0


def _rating_distribution(comparison: QueryComparison) -> list[float]:
    """Probability of ratings 1–4 for one query, per the rater model."""
    if comparison.gks_count == 0:
        # GKS found nothing either: coin-flip territory.
        return [0.10, 0.30, 0.35, 0.25]
    if comparison.slca_count == 0:
        return [0.62, 0.33, 0.04, 0.01]
    if comparison.slca_is_root:
        return [0.52, 0.38, 0.07, 0.03]
    # SLCA produced focused nodes: GKS still adds context/DI but loses the
    # "only game in town" advantage.
    return [0.38, 0.42, 0.13, 0.07]


def simulate_feedback(comparisons: list[QueryComparison], users: int = 40,
                      seed: int = 7) -> FeedbackTable:
    """Simulate *users* raters over all query comparisons."""
    rng = random.Random(seed)
    table = FeedbackTable(users=users)
    for comparison in comparisons:
        weights = _rating_distribution(comparison)
        ratings = rng.choices([1, 2, 3, 4], weights=weights, k=users)
        table.add(comparison.qid, ratings)
    return table
