"""Interactive exploration sessions (paper §6, Examples 1–2).

The paper's user story is iterative: run an imperfect query, read the
ranked response and its DI, take a refinement, repeat — "user queries
can be refined progressively".  :class:`ExplorationSession` packages
that loop with full history, so programmatic clients (and the examples)
can drive a multi-step exploration and audit how they got somewhere.

Every step records the query, the response, its insights and the
refinements that were offered; :meth:`back` rewinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import GKSEngine
from repro.core.insights import InsightReport
from repro.core.query import Query
from repro.core.refinement import Refinement
from repro.core.results import GKSResponse
from repro.errors import QueryError


@dataclass(frozen=True)
class SessionStep:
    """One query/response/insight round."""

    query: Query
    response: GKSResponse
    insights: InsightReport
    refinements: tuple[Refinement, ...]
    note: str = ""

    @property
    def result_count(self) -> int:
        return len(self.response)


@dataclass
class ExplorationSession:
    """A stateful refine-and-requery loop over one engine."""

    engine: GKSEngine
    steps: list[SessionStep] = field(default_factory=list)
    insight_top: int = 10
    refinement_top: int = 5

    # ------------------------------------------------------------------
    @property
    def current(self) -> SessionStep:
        if not self.steps:
            raise QueryError("session has no steps yet; call run()")
        return self.steps[-1]

    def __len__(self) -> int:
        return len(self.steps)

    # ------------------------------------------------------------------
    def run(self, query: str | Query, s: int | None = None,
            note: str = "", mode: str | None = None,
            threshold: float | None = None) -> SessionStep:
        """Execute a query and push the step onto the history."""
        response = self.engine.search(query, s=s, mode=mode,
                                      threshold=threshold)
        insights = self.engine.insights(response, top=self.insight_top)
        refinements = tuple(self.engine.refine(
            response, insights, top=self.refinement_top))
        step = SessionStep(query=response.query, response=response,
                           insights=insights, refinements=refinements,
                           note=note)
        self.steps.append(step)
        return step

    def refine(self, choice: int = 0, s: int | None = None) -> SessionStep:
        """Apply the *choice*-th refinement of the current step.

        Default threshold: a *subset* refinement runs with AND semantics
        (it names exactly the keywords one result group matched); an
        *expansion* keeps the current step's ``s`` plus one — the added
        keyword must pay off, but the query stays as forgiving as before
        (the §7.4 walk: QD1 at s=1 refines to s=2 and surfaces the ten
        joint articles).
        """
        from repro.core.refinement import RefinementKind

        refinements = self.current.refinements
        if not refinements:
            raise QueryError("current step offers no refinements")
        if not 0 <= choice < len(refinements):
            raise QueryError(
                f"refinement {choice} out of range "
                f"(0..{len(refinements) - 1})")
        refinement = refinements[choice]
        if s is None and refinement.kind is RefinementKind.EXPANSION:
            s = min(self.current.query.s + 1, len(refinement.keywords))
        query = refinement.as_query(s=s)
        return self.run(query,
                        note=f"refined[{refinement.kind.value}] from "
                             f"step {len(self.steps)}")

    def drill_down(self, s: int | None = None) -> SessionStep:
        """Re-query with the top recursive-DI keywords (§2.3 recursion)."""
        seeds = self.current.insights.top_keywords(self.refinement_top)
        if not seeds:
            raise QueryError("current step has no insight keywords")
        return self.run(Query.of(seeds, s=s if s is not None else 1),
                        note=f"DI drill-down from step {len(self.steps)}")

    def back(self) -> SessionStep:
        """Drop the latest step and return to the previous one."""
        if len(self.steps) <= 1:
            raise QueryError("nothing to go back to")
        self.steps.pop()
        return self.current

    # ------------------------------------------------------------------
    def transcript(self) -> str:
        """The whole session as readable text."""
        lines: list[str] = []
        for number, step in enumerate(self.steps, start=1):
            lines.append(f"step {number}: {step.query}  "
                         f"-> {step.result_count} node(s)"
                         + (f"  [{step.note}]" if step.note else ""))
            for insight in list(step.insights)[:3]:
                lines.append(f"    DI {insight.render()}")
            for refinement in step.refinements[:3]:
                lines.append(
                    f"    refine[{refinement.kind.value}] "
                    f"{' '.join(refinement.keywords)}")
        return "\n".join(lines)
