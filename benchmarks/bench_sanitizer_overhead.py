"""Runtime sanitizer overhead: monitored locks must be ~free to carry.

The lock monitor is only deployable against live traffic if wrapping
every ``new_lock`` in an :class:`~repro.obs.locks.InstrumentedLock`
does not materially slow the serving path.  This bench drives the same
closed-loop workload through a :class:`~repro.serve.ServerCore` twice —
uninstrumented (the zero-cost raw-lock default) and with a
:class:`~repro.obs.locks.LockMonitor` installed — and writes the
comparison to ``benchmarks/results/BENCH_sanitizer.json``.  The
acceptance bar is monitored overhead below 10% of the uninstrumented
median.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset
from repro.obs.locks import LockMonitor, install_monitor, uninstall_monitor
from repro.serve import LoadGenerator, ServeConfig, ServerCore

pytestmark = pytest.mark.concurrency

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sanitizer.json"

QUERIES = ["karen mike", "karen mining students", "databases courses name"]
ROUNDS = 40
CONCURRENCY = 4
ITERATIONS = 12


def _core() -> ServerCore:
    engine = GKSEngine(load_dataset("figure2a"))
    return ServerCore(engine, ServeConfig(workers=CONCURRENCY,
                                          queue_capacity=256))


def _run_round(core: ServerCore) -> float:
    """Wall seconds for one closed-loop pass over the query mix."""
    generator = LoadGenerator(core)
    started = time.perf_counter()
    generator.run_closed(QUERIES, concurrency=CONCURRENCY,
                         iterations=ITERATIONS)
    return time.perf_counter() - started


def _paired_rounds() -> tuple[list[float], list[float]]:
    """Per-round ms for (uninstrumented, monitored), paired in time.

    Both variants run back-to-back within each round — one broker each,
    built under the matching monitor state — so each pair shares
    whatever machine phase (CPU frequency, scheduler placement, GC) the
    round landed in.  The overhead statistic is the *median of
    per-round ratios*: a paired comparison that cancels process-global
    noise an unpaired min-vs-min or median-vs-median cannot.
    """
    plain_core = _core()
    monitor = LockMonitor()
    install_monitor(monitor)
    try:
        monitored_core = _core()
    finally:
        uninstall_monitor()
    plain, monitored = [], []
    with plain_core, monitored_core:
        _run_round(plain_core)       # warm-up: caches, thread pools
        _run_round(monitored_core)
        for _ in range(ROUNDS):
            plain.append(_run_round(plain_core) * 1000.0)
            monitored.append(_run_round(monitored_core) * 1000.0)
    return plain, monitored


def test_sanitizer_overhead_report():
    plain, monitored = _paired_rounds()
    plain_ms = statistics.median(plain)
    monitored_ms = statistics.median(monitored)
    ratios = [m / p for p, m in zip(plain, monitored)]
    overhead_pct = (statistics.median(ratios) - 1.0) * 100.0
    report = {
        "dataset": "figure2a",
        "queries": QUERIES,
        "rounds": ROUNDS,
        "closed_loop": {"concurrency": CONCURRENCY,
                        "iterations": ITERATIONS},
        "uninstrumented_ms_per_round": round(plain_ms, 4),
        "monitored_ms_per_round": round(monitored_ms, 4),
        "monitored_overhead_pct": round(overhead_pct, 2),
        "statistic": "median of per-round paired ratios",
        "acceptance": "monitored overhead < 10% of uninstrumented",
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
    print()
    print(json.dumps(report, indent=2))

    # generous in-test guard (the JSON carries the precise number; CI
    # machines are noisy enough that a hard 10% assert would flake)
    assert overhead_pct < 50.0, report


def test_uninstrumented_serving_uses_raw_locks():
    """The default build must pay literally zero wrapper cost."""
    from repro.obs.locks import InstrumentedLock

    core = _core()
    with core:
        assert not isinstance(core._lock, InstrumentedLock)
        assert not isinstance(core.engine._cache_lock, InstrumentedLock)
