"""Setuptools entry point (legacy path; see pyproject.toml for why)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Generic Keyword Search over XML data (GKS) — reproduction "
                 "of Agarwal, Ramamritham & Agarwal, EDBT 2016"),
    author="GKS reproduction project",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    entry_points={"console_scripts": ["gks = repro.cli:main"]},
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
