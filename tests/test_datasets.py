"""Tests for the synthetic corpus generators (planted structure +
determinism)."""

import pytest

from repro.core.engine import GKSEngine
from repro.datasets import names
from repro.datasets.registry import dataset_names, load_dataset
from repro.errors import DatasetError
from repro.index.builder import build_index
from repro.xmltree.serialize import serialize_node


@pytest.fixture(scope="module")
def dblp_engine():
    return GKSEngine(load_dataset("dblp"))


@pytest.fixture(scope="module")
def sigmod_engine():
    return GKSEngine(load_dataset("sigmod"))


class TestRegistry:
    def test_all_names_load(self):
        for name in dataset_names():
            repository = load_dataset(name)
            assert repository.total_nodes > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_determinism(self):
        first = load_dataset("dblp", seed=3)
        second = load_dataset("dblp", seed=3)
        assert serialize_node(first[0].root) == \
            serialize_node(second[0].root)

    def test_seeds_differ(self):
        first = load_dataset("nasa", seed=1)
        second = load_dataset("nasa", seed=2)
        assert serialize_node(first[0].root) != \
            serialize_node(second[0].root)

    def test_scale_grows_corpus(self):
        small = load_dataset("swissprot", scale=1)
        large = load_dataset("swissprot", scale=2)
        assert large.total_nodes > small.total_nodes * 1.5


class TestDBLPPlants:
    def test_qd2_trio_articles(self, dblp_engine):
        # Example 2: Buneman+Fan+Weinstein share 5 inproceedings, 4 of
        # them by just the trio; Banerjee never joins them.
        response = dblp_engine.search(
            '"Peter Buneman" "Wenfei Fan" "Scott Weinstein"', s=3)
        joint = [node for node in response if node.distinct_keywords == 3]
        assert len(joint) >= 4
        banerjee = dblp_engine.search(
            '"Prithviraj Banerjee" "Peter Buneman"', s=2)
        # no entity (article-level) node joins them — only the root
        # container can cover both names
        assert all(not node.is_lce for node in banerjee)

    def test_qd1_single_joint_article(self, dblp_engine):
        response = dblp_engine.search(
            '"Dimitrios Georgakopoulos" "Joe D. Morrison"', s=2)
        assert len(response) == 1

    def test_refinement_pair_has_ten_joints(self, dblp_engine):
        response = dblp_engine.search(
            '"Dimitrios Georgakopoulos" "Marek Rusinkiewicz"', s=2)
        assert len(response) == 10  # §7.4's number

    def test_single_author_articles_are_connecting(self, dblp_engine):
        repository = dblp_engine.repository
        hashes = dblp_engine.index.hashes
        single = [node for node in repository[0].root.children
                  if sum(1 for child in node.children
                         if child.tag == "author") == 1]
        assert single, "bulk generation must produce 1-author entries"
        for node in single[:10]:
            assert hashes.is_entity(node.dewey) is None

    def test_multi_author_articles_are_entities(self, dblp_engine):
        repository = dblp_engine.repository
        hashes = dblp_engine.index.hashes
        multi = [node for node in repository[0].root.children
                 if sum(1 for child in node.children
                        if child.tag == "author") >= 2]
        for node in multi[:10]:
            assert hashes.is_entity(node.dewey) is not None


class TestSigmodPlants:
    def test_qs1_authors_never_coauthor(self, sigmod_engine):
        response = sigmod_engine.search(
            '"Anthony I. Wasserman" "Lawrence A. Rowe"', s=2)
        # only a top-level container can cover both names — no shared
        # article exists (Table 7: QS1 max keywords = 1)
        assert all(not node.is_lce and len(node.dewey) <= 2
                   for node in response)

    def test_qs4_eight_author_article_exists(self, sigmod_engine):
        query = " ".join(f'"{author}"' for author in names.QS4_AUTHORS)
        response = sigmod_engine.search(query, s=1)
        assert response.max_distinct_keywords() == 8

    def test_hybrid_pair_has_five_articles(self, sigmod_engine):
        response = sigmod_engine.search(
            '"Lawrence A. Rowe" "Michael Stonebraker"', s=2)
        assert len(response) == 5


class TestMondialPlants:
    def test_qm2_laos_exists(self):
        engine = GKSEngine(load_dataset("mondial"))
        response = engine.search("Laos country name", s=3)
        assert len(response) >= 1

    def test_religions_planted(self):
        engine = GKSEngine(load_dataset("mondial"))
        response = engine.search("country Muslim", s=2)
        assert len(response) >= 5


class TestShapes:
    def test_treebank_is_deep(self):
        assert load_dataset("treebank").depth >= 30

    def test_plays_are_multi_document(self):
        assert len(load_dataset("plays")) >= 2

    def test_nasa_keywords_are_deep(self):
        repository = load_dataset("nasa")
        index = build_index(repository)
        postings = index.postings("quasar")
        assert postings and all(len(dewey) >= 3 for dewey in postings)

    def test_interpro_publications_are_entities(self):
        repository = load_dataset("interpro")
        index = build_index(repository)
        publication = next(
            node for node in repository.iter_nodes()
            if node.tag == "publication")
        assert index.hashes.is_entity(publication.dewey) is not None

    def test_figure_fixtures_match_paper_counts(self):
        fig2a = load_dataset("figure2a")
        assert fig2a.total_nodes == 36
        fig1 = load_dataset("figure1")
        assert fig1.total_nodes == 18
