"""Property tests for the extension modules (hypothesis)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.query import Query
from repro.core.search import search
from repro.core.topk import search_top_k
from repro.index.builder import build_index
from repro.schema.inference import infer_schema
from repro.text.analyzer import Analyzer
from repro.xmltree.json_adapter import json_to_document
from repro.xmltree.node import build_tree
from repro.xmltree.repository import Repository

KEYWORDS = ["kilo", "lima", "mike", "november"]
TAGS = ["va", "vb", "vc"]
ANALYZER = Analyzer(use_stemming=False)


def spec_strategy():
    leaf = st.tuples(st.sampled_from(TAGS), st.sampled_from(KEYWORDS))
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(TAGS),
            st.lists(children, min_size=1, max_size=4)),
        max_leaves=14,
    ).map(lambda spec: ("root", [spec]) if not isinstance(spec[1], list)
          else ("root", spec[1]))


@st.composite
def repo_query_k(draw):
    spec = draw(spec_strategy())
    repo = Repository()
    repo.add_root(build_tree(spec))
    count = draw(st.integers(min_value=1, max_value=3))
    keywords = draw(st.lists(st.sampled_from(KEYWORDS), min_size=count,
                             max_size=count, unique=True))
    s = draw(st.integers(min_value=1, max_value=count))
    k = draw(st.integers(min_value=1, max_value=6))
    return repo, Query.of(keywords, s=s), k


@settings(max_examples=120, deadline=None)
@given(repo_query_k())
def test_topk_is_head_of_full_ranking(case):
    repo, query, k = case
    index = build_index(repo, analyzer=ANALYZER)
    full = search(index, query)
    top = search_top_k(index, query, k)
    assert top.deweys == full.deweys[:k]


@settings(max_examples=80, deadline=None)
@given(spec_strategy())
def test_schema_multiplicities_bound_instances(spec):
    """Every instance's child counts fall inside the inferred bounds."""
    root = build_tree(spec)
    schema = infer_schema(root)
    for node in root.iter_subtree():
        element_type = schema.type_of(tuple(node.tag_path()))
        assert element_type is not None
        counts: dict[str, int] = {}
        for child in node.children:
            counts[child.tag] = counts.get(child.tag, 0) + 1
        for tag, (low, high) in element_type.child_multiplicity.items():
            observed = counts.get(tag, 0)
            assert low <= observed <= high


@settings(max_examples=80, deadline=None)
@given(spec_strategy())
def test_schema_occurrences_sum_to_node_count(spec):
    root = build_tree(spec)
    schema = infer_schema(root)
    total = sum(element_type.occurrences for element_type in schema)
    assert total == sum(1 for _ in root.iter_subtree())


# ----------------------------------------------------------------------
# JSON adapter properties
# ----------------------------------------------------------------------
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-10 ** 6,
                                          max_value=10 ** 6),
    st.sampled_from(KEYWORDS))

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.sampled_from(["alpha", "beta", "gamma"]),
                        children, max_size=4)),
    max_leaves=20)


@settings(max_examples=120, deadline=None)
@given(json_values)
def test_json_adapter_preserves_scalars(value):
    """Every scalar in the JSON value appears as text in the tree, and
    the tree has valid consecutive Dewey ids."""
    document = json_to_document(value)

    scalars: list[str] = []

    def collect(node) -> None:
        if isinstance(node, dict):
            for child in node.values():
                collect(child)
        elif isinstance(node, list):
            for child in node:
                collect(child)
        elif node is not None:
            if isinstance(node, bool):
                scalars.append("true" if node else "false")
            else:
                scalars.append(str(node))

    collect(value)
    texts = [node.text for node in document.root.iter_subtree()
             if node.has_text]
    assert sorted(texts) == sorted(scalars)

    for node in document.root.iter_subtree():
        for ordinal, child in enumerate(node.children):
            assert child.dewey == node.dewey + (ordinal,)


@settings(max_examples=60, deadline=None)
@given(json_values)
def test_json_trees_are_indexable(value):
    repository = Repository()
    repository.add(json_to_document(value))
    index = build_index(repository, analyzer=ANALYZER)
    assert index.stats.total_nodes >= 1
