"""Unified engine configuration (the `EngineConfig` API).

Engine construction used to thread 8+ kwargs through ``from_texts`` /
``from_paths`` and the constructor, each copy drifting independently.
:class:`EngineConfig` is the one frozen record of every tuning knob —
analysis, search defaults, caching, budgeting, ingestion recovery,
sharding and index persistence — and :meth:`GKSEngine.open` is the one
factory that consumes it::

    from repro import EngineConfig, GKSEngine

    config = EngineConfig(s=2, shards=4, workers=2,
                          index_path="corpus.gksindex")
    engine = GKSEngine.open(["a.xml", "b.xml"], config=config)

``open`` accepts a :class:`~repro.xmltree.repository.Repository`, a
single XML text or corpus path, or an iterable of either; wrap the
iterable in :class:`Texts` / :class:`Paths` to skip sniffing.  The
legacy ``from_texts`` / ``from_paths`` classmethods remain as thin
shims over ``open``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.parser import RecoveryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.budget import SearchBudget


class Texts(tuple):
    """Marks an iterable of raw XML strings for :meth:`GKSEngine.open`."""

    def __new__(cls, items=()):
        return super().__new__(cls, tuple(items))


class Paths(tuple):
    """Marks an iterable of corpus file paths for :meth:`GKSEngine.open`."""

    def __new__(cls, items=()):
        return super().__new__(cls, tuple(items))


def _default_ranker() -> Callable:
    from repro.core.ranking import rank_node

    return rank_node


#: Query semantics modes (the ``repro.semantics`` subsystem): strict
#: ``min(s,|Q|)`` containment, probabilistic p-document evaluation, or
#: no-but-semantic-match relaxation of empty strict results.
MODES = ("strict", "probabilistic", "relaxed")


def _check_mode(mode: str) -> None:
    if mode not in MODES:
        raise ConfigError(
            f"unknown query mode {mode!r}; expected one of {MODES}")


def _check_threshold(threshold: float) -> None:
    if not 0.0 <= threshold <= 1.0:
        raise ConfigError(
            f"probability threshold must be in [0, 1]: {threshold}")


@dataclass(frozen=True)
class SearchOptions:
    """Per-request tuning knobs, one frozen record for every surface.

    ``GKSEngine.search`` / ``search_top_k``, ``ServerCore.submit`` and
    the HTTP envelope all accept the same record, so a request's tuning
    travels unchanged from the wire to the engine.  Every field is
    optional; ``None`` means "use the caller's default" (an explicit
    keyword argument beats the option, the option beats the engine /
    broker configuration).

    Attributes
    ----------
    s:
        Search threshold (``RQ(s)``).
    k:
        Top-k truncation; ``None`` returns the full result.
    use_cache:
        Whether the engine response cache may serve / store this query.
    strict_deadline:
        Raise :class:`~repro.errors.SearchTimeout` on a deadline trip
        instead of returning a degraded partial response.
    deadline_s:
        Wall-clock allowance for the request, in seconds.
    mode:
        Query semantics for this request: ``"strict"``,
        ``"probabilistic"`` or ``"relaxed"``; ``None`` uses the
        engine's ``EngineConfig.mode``.  Probabilistic requests need an
        engine opened in probabilistic mode (the index must carry the
        compiled probability tables).
    threshold:
        Probabilistic-mode result filter: only nodes whose
        possible-worlds probability is ≥ this value are returned.
    """

    s: int | None = None
    k: int | None = None
    use_cache: bool | None = None
    strict_deadline: bool | None = None
    deadline_s: float | None = None
    mode: str | None = None
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.s is not None and self.s < 1:
            raise ConfigError(f"s must be >= 1: {self.s}")
        if self.k is not None and self.k < 1:
            raise ConfigError(f"k must be >= 1: {self.k}")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ConfigError(
                f"deadline_s must be >= 0: {self.deadline_s}")
        if self.mode is not None:
            _check_mode(self.mode)
        if self.threshold is not None:
            _check_threshold(self.threshold)

    @classmethod
    def from_mapping(cls, raw: dict) -> "SearchOptions":
        """Build options from a wire mapping (the HTTP ``options`` object).

        Accepts the dataclass field names plus ``deadline_ms`` (the wire
        spelling); unknown keys and untyped values raise
        :class:`~repro.errors.ValidationError` so a typo'd option is a
        client error, not a silently ignored one.
        """
        from repro.errors import ValidationError

        if not isinstance(raw, dict):
            raise ValidationError("options must be a JSON object")
        known = {"s", "k", "use_cache", "strict_deadline", "deadline_s",
                 "deadline_ms", "mode", "threshold"}
        unknown = set(raw) - known
        if unknown:
            raise ValidationError(
                f"unknown search option(s): {sorted(unknown)}")
        values: dict = {}
        try:
            if raw.get("s") is not None:
                values["s"] = int(raw["s"])
            if raw.get("k") is not None:
                values["k"] = int(raw["k"])
            if raw.get("use_cache") is not None:
                values["use_cache"] = bool(raw["use_cache"])
            if raw.get("strict_deadline") is not None:
                values["strict_deadline"] = bool(raw["strict_deadline"])
            if raw.get("deadline_ms") is not None:
                values["deadline_s"] = float(raw["deadline_ms"]) / 1000.0
            elif raw.get("deadline_s") is not None:
                values["deadline_s"] = float(raw["deadline_s"])
            if raw.get("mode") is not None:
                values["mode"] = str(raw["mode"])
            if raw.get("threshold") is not None:
                values["threshold"] = float(raw["threshold"])
            return cls(**values)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"invalid search option: {exc}") from exc
        except ConfigError as exc:
            raise ValidationError(str(exc)) from exc

    def replace(self, **overrides) -> "SearchOptions":
        """A copy with *overrides* applied (re-validated)."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigError(
                f"unknown SearchOptions field(s): {sorted(unknown)}")
        return replace(self, **overrides)


@dataclass(frozen=True)
class EngineConfig:
    """Every engine tuning knob in one frozen, validated record.

    Attributes
    ----------
    analyzer:
        Text-normalisation pipeline shared by indexing and querying.
    s:
        Default search threshold (``RQ(s)``) when a query names none.
    ranker:
        Default ranking function for :meth:`GKSEngine.search`.
    index_tags:
        Whether element names are indexed alongside text keywords.
    cache_size:
        Capacity of the LRU response cache (0 disables it).
    budget:
        Default :class:`~repro.core.budget.SearchBudget` applied to
        every search that does not bring its own (budgeted responses
        bypass the cache).
    recovery:
        Ingestion :class:`~repro.xmltree.parser.RecoveryPolicy` for
        text/path sources.
    shards:
        Number of document shards; 1 keeps the classic monolithic
        index, >1 builds a :class:`~repro.index.sharding.ShardedIndex`
        served scatter-gather.
    workers:
        Processes used to build shards (1 = serial in-process build).
    shard_strategy:
        ``"round_robin"`` (by document number) or ``"hash"`` (by
        document name).
    index_path:
        Optional persisted-index location: loaded when present and
        compatible, (re)built and saved otherwise.
    store_path:
        Optional segmented-store directory.  When set, the engine opens
        (or initialises) a durable write path there: every
        ``add_document`` is write-ahead logged before it is applied, the
        memtable flushes to immutable segments, and ``open`` recovers
        the exact index after a crash at any byte offset.  Mutually
        exclusive with ``index_path`` (the store owns persistence).
    memtable_docs:
        Memtable flush threshold — pending documents are flushed to a
        new on-disk segment once this many accumulate.
    compact_segments:
        Auto-compaction threshold — after a flush, any shard whose
        segment chain reaches this length is compacted down to one run.
    codec:
        On-disk representation used when persisting through
        ``index_path``: ``"raw"`` (the JSON envelope formats, eager
        loading) or ``"varint-dag"`` (the v4 binary codec —
        delta+varint posting blocks, DAG-shared subtrees, lazy
        mmap-backed loading).  Either codec opens files written by the
        other; the codec only selects what *new* saves write.
    mode:
        Default query semantics (``repro.semantics``): ``"strict"``
        (the classic pipeline), ``"probabilistic"`` (p-document
        evaluation — the ``p:`` annotations are compiled into
        probability tables at index time) or ``"relaxed"``
        (no-but-semantic-match rescue of empty strict results).
        Per-request ``SearchOptions.mode`` overrides it; only an engine
        opened in probabilistic mode can serve probabilistic requests.
    threshold:
        Default probabilistic-mode probability filter in [0, 1].
    """

    analyzer: Analyzer = DEFAULT_ANALYZER
    s: int = 1
    ranker: Callable = field(default_factory=_default_ranker)
    index_tags: bool = True
    cache_size: int = 64
    budget: "SearchBudget | None" = None
    recovery: RecoveryPolicy | str = RecoveryPolicy.STRICT
    shards: int = 1
    workers: int = 1
    shard_strategy: str = "round_robin"
    index_path: str | Path | None = None
    store_path: str | Path | None = None
    memtable_docs: int = 64
    compact_segments: int = 4
    codec: str = "raw"
    mode: str = "strict"
    threshold: float = 0.0

    def __post_init__(self) -> None:
        from repro.index.sharding import PARTITION_STRATEGIES

        if self.s < 1:
            raise ConfigError(f"s must be >= 1: {self.s}")
        if self.cache_size < 0:
            raise ConfigError(
                f"cache_size must be >= 0: {self.cache_size}")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1: {self.shards}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1: {self.workers}")
        if self.shard_strategy not in PARTITION_STRATEGIES:
            raise ConfigError(
                f"unknown shard strategy {self.shard_strategy!r}; "
                f"expected one of {PARTITION_STRATEGIES}")
        if not callable(self.ranker):
            raise ConfigError(f"ranker must be callable: {self.ranker!r}")
        if self.memtable_docs < 1:
            raise ConfigError(
                f"memtable_docs must be >= 1: {self.memtable_docs}")
        if self.compact_segments < 2:
            raise ConfigError(
                f"compact_segments must be >= 2: {self.compact_segments}")
        from repro.index.codec import CODEC_NAMES

        if self.codec not in CODEC_NAMES:
            raise ConfigError(
                f"unknown codec {self.codec!r}; "
                f"expected one of {CODEC_NAMES}")
        if self.store_path is not None and self.index_path is not None:
            raise ConfigError(
                "store_path and index_path are mutually exclusive: the "
                "segmented store owns persistence")
        _check_mode(self.mode)
        _check_threshold(self.threshold)
        if self.mode == "probabilistic" and self.store_path is not None:
            raise ConfigError(
                "probabilistic mode is incompatible with store_path: the "
                "durable write path serves strict/relaxed queries only")
        # normalise early so a typo'd policy fails at config time, not
        # at first ingest
        object.__setattr__(self, "recovery",
                           _coerce_policy(self.recovery))

    def replace(self, **overrides) -> "EngineConfig":
        """A copy with *overrides* applied (re-validated)."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigError(
                f"unknown EngineConfig field(s): {sorted(unknown)}")
        return replace(self, **overrides)


def _coerce_policy(policy: RecoveryPolicy | str) -> RecoveryPolicy:
    try:
        return RecoveryPolicy.coerce(policy)
    except Exception as exc:
        raise ConfigError(
            f"invalid recovery policy {policy!r}: {exc}") from exc
