"""Baselines: SLCA, ELCA, naïve GKS, and brute-force oracles."""

from repro.baselines.bruteforce import (brute_candidates, brute_elca,
                                        brute_slca, node_keywords,
                                        subtree_keyword_map)
from repro.baselines.elca import all_keyword_closure, elca
from repro.baselines.elca_stack import elca_stack
from repro.baselines.fslca import FSLCAResult, fslca
from repro.baselines.slca_intersect import slca_set_intersection
from repro.baselines.ranking_models import (make_xrank_ranker, xrank_ranker,
                                            xsearch_ranker)
from repro.baselines.target_type import (TypeScore, deduce_target_type,
                                         entity_type_instances,
                                         score_types)
from repro.baselines.lca import (closest_match, left_match, match_lca,
                                 posting_lists, remove_ancestors,
                                 right_match)
from repro.baselines.pworlds import (possible_worlds_probabilities,
                                     world_choices)
from repro.baselines.relaxation import RelaxedHit, exhaustive_relaxation
from repro.baselines.naive_gks import (keyword_subsets, naive_gks,
                                       subset_count)
from repro.baselines.slca import (contains_all_keywords,
                                  slca_indexed_lookup_eager, slca_scan)

__all__ = [
    "FSLCAResult", "TypeScore", "all_keyword_closure", "brute_candidates",
    "brute_elca", "brute_slca", "closest_match", "contains_all_keywords",
    "deduce_target_type", "elca", "elca_stack",
    "entity_type_instances", "fslca", "slca_set_intersection",
    "keyword_subsets", "left_match", "make_xrank_ranker", "match_lca",
    "naive_gks", "node_keywords", "posting_lists",
    "possible_worlds_probabilities", "RelaxedHit",
    "exhaustive_relaxation", "world_choices", "remove_ancestors",
    "right_match", "score_types", "slca_indexed_lookup_eager",
    "slca_scan", "subset_count", "subtree_keyword_map", "xrank_ranker",
    "xsearch_ranker",
]
