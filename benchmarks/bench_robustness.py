"""Robustness fuzz: hundreds of random queries per corpus.

No single query may crash, hang, or break an invariant; latency must
stay in a sane envelope.  This is the volume counterpart of the
hand-crafted Table 6 workload — the kind of battering a production
search endpoint takes.
"""

from __future__ import annotations

import time

import pytest

from repro.core.search import search
from repro.eval.querygen import WorkloadSpec, generate_queries
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for

CORPORA = ["dblp", "mondial", "swissprot", "interpro", "nasa"]


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    position = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[position]


@pytest.mark.parametrize("dataset", CORPORA)
def test_random_workload_speed(dataset, benchmark):
    engine = engine_for(dataset)
    queries = generate_queries(
        engine.index, WorkloadSpec(queries=20, seed=11))

    def run_all():
        return [search(engine.index, query) for query in queries]

    responses = benchmark(run_all)
    assert len(responses) == len(queries)


def test_robustness_report(results_writer, benchmark):
    def fuzz():
        rows = []
        for dataset in CORPORA:
            engine = engine_for(dataset)
            queries = generate_queries(
                engine.index,
                WorkloadSpec(queries=100, noise=0.15, seed=23))
            latencies: list[float] = []
            empty = 0
            for query in queries:
                started = time.perf_counter()
                response = search(engine.index, query)
                latencies.append((time.perf_counter() - started) * 1000)
                if not response.nodes:
                    empty += 1
                for node in response:
                    assert node.distinct_keywords >= \
                        response.query.effective_s
                    assert node.score > 0
            rows.append((dataset, len(queries), empty,
                         f"{_percentile(latencies, 0.50):.2f}",
                         f"{_percentile(latencies, 0.95):.2f}",
                         f"{max(latencies):.2f}"))
        return rows

    rows = benchmark.pedantic(fuzz, rounds=1, iterations=1)
    results_writer("robustness_fuzz", render_table(
        ["corpus", "queries", "empty", "p50 ms", "p95 ms", "max ms"],
        rows, title="Robustness fuzz — 100 random queries per corpus"))
    for row in rows:
        assert row[1] == 100
