"""The regression gate: diff an aggregate against a committed baseline.

A baseline is simply a previously blessed ``aggregate.json`` (optionally
with a ``tolerances`` section).  :func:`compare_aggregates` joins rows
by ``run_id`` and checks two field classes:

* **exact fields** — deterministic outcomes (completed counts, error
  counts) that must match the baseline precisely; any drift is a
  correctness regression, not noise;
* **relative fields** — timing-derived numbers gated only when the
  baseline declares a tolerance for them (``{"throughput_rps": 0.5}``
  means ±50%), because wall-clock on shared CI machines is noise by
  default.

A missing or extra run is always a violation: the run table is frozen,
so the join must be total.  The CLI exits non-zero when any violation
survives — the CI contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError

#: Outcome fields gated exactly unless the baseline overrides the list.
DEFAULT_EXACT = ("submitted", "completed", "shed", "timeouts", "errors")


@dataclass(frozen=True)
class Violation:
    """One gate failure: which run, which field, what diverged."""

    run_id: str
    field: str
    expected: object
    actual: object
    kind: str = "exact"  # "exact" | "relative" | "missing" | "extra"

    def render(self) -> str:
        if self.kind == "missing":
            return f"{self.run_id}: run missing from current aggregate"
        if self.kind == "extra":
            return f"{self.run_id}: run absent from baseline"
        detail = (f"expected {self.expected}, got {self.actual}")
        if self.kind == "relative":
            detail += " (outside tolerance)"
        return f"{self.run_id}: {self.field}: {detail}"


def load_aggregate(path: str | Path) -> dict:
    path = Path(path)
    try:
        aggregate = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read aggregate {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(f"cannot parse aggregate {path}: {exc}") from exc
    if not isinstance(aggregate, dict) or "rows" not in aggregate:
        raise ConfigError(f"{path} is not an aggregate (no 'rows')")
    return aggregate


def _rows_by_id(aggregate: dict) -> dict[str, dict]:
    rows = {}
    for row in aggregate["rows"]:
        run_id = row.get("run_id")
        if not run_id:
            raise ConfigError("aggregate row without a run_id")
        if run_id in rows:
            raise ConfigError(f"duplicate run_id {run_id!r} in aggregate")
        rows[run_id] = row
    return rows


def compare_aggregates(current: dict, baseline: dict,
                       tolerances: dict | None = None) -> list[Violation]:
    """Every way *current* diverges from *baseline* beyond tolerance.

    *tolerances* overrides the baseline's own ``tolerances`` section;
    shape: ``{"exact": [fields...], "relative": {field: rel_frac}}``.
    """
    rules = tolerances if tolerances is not None \
        else baseline.get("tolerances", {})
    exact_fields = tuple(rules.get("exact", DEFAULT_EXACT))
    relative = dict(rules.get("relative", {}))

    current_rows = _rows_by_id(current)
    baseline_rows = _rows_by_id(baseline)
    violations: list[Violation] = []

    for run_id in baseline_rows:
        if run_id not in current_rows:
            violations.append(Violation(run_id, "", None, None,
                                        kind="missing"))
    for run_id in current_rows:
        if run_id not in baseline_rows:
            violations.append(Violation(run_id, "", None, None,
                                        kind="extra"))

    for run_id, expected_row in baseline_rows.items():
        actual_row = current_rows.get(run_id)
        if actual_row is None:
            continue
        for field in exact_fields:
            if field not in expected_row:
                continue
            expected = expected_row[field]
            actual = actual_row.get(field)
            if actual != expected:
                violations.append(Violation(run_id, field, expected,
                                            actual, kind="exact"))
        for field, tolerance in relative.items():
            if field not in expected_row:
                continue
            expected = float(expected_row[field])
            actual = float(actual_row.get(field, 0.0))
            if tolerance < 0:
                raise ConfigError(f"relative tolerance for {field!r} "
                                  f"must be >= 0: {tolerance}")
            allowed = abs(expected) * float(tolerance)
            if abs(actual - expected) > allowed:
                violations.append(Violation(run_id, field, expected,
                                            actual, kind="relative"))
    return violations


def compare_files(current_path: str | Path, baseline_path: str | Path,
                  tolerances: dict | None = None) -> list[Violation]:
    """File-level convenience over :func:`compare_aggregates`."""
    return compare_aggregates(load_aggregate(current_path),
                              load_aggregate(baseline_path),
                              tolerances=tolerances)
