"""Codec benchmark: on-disk size, cold-open latency, raw equivalence.

Measures the v4 ``varint-dag`` binary format against the ``raw`` gzip
JSON envelope on the syndicated-mirrors corpus — the workload the DAG
codec is built for (one shared record pool republished by many sites,
so structural redundancy grows with the mirror count while distinct
content stays fixed) — then writes the record to
``benchmarks/results/BENCH_index_codec.json``.

Three honesty rules shape the record:

* Correctness is asserted unconditionally: every query must answer
  node-for-node, score-for-score identically from the lazily loaded
  binary index and the in-memory index it was written from.
* The compression claim is asserted only where the workload warrants
  it (mirrors at scale >= 4 must reach the 3x the DAG is sold on);
  the single-document ``dblp`` corpus has little verbatim subtree
  sharing and its ~1x ratio is recorded, not hidden.
* Cold-open latency counts the *first query* separately: the lazy
  loader defers posting inflation, so open-time alone would overstate
  the win.  Both numbers land in the JSON.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.core.query import Query
from repro.core.search import search
from repro.datasets.registry import load_dataset
from repro.index.builder import IndexBuilder
from repro.index.codec import write_binary_index
from repro.index.storage import load_index, save_index

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_index_codec.json"

MIRROR_SCALES = (2, 4, 8)
COLD_OPEN_SCALE = 8
COLD_OPEN_ROUNDS = 5
QUERIES = [("databases compression", 1), ("rivera indexing", 1),
           ("storage streams retrieval", 2)]


def _signature(response):
    return [(node.dewey, node.score) for node in response.nodes]


def _build(name: str, scale: int):
    builder = IndexBuilder()
    builder.add_repository(load_dataset(name, scale=scale))
    return builder.build()


def _persist_all(index, stem: Path) -> dict[str, Path]:
    """Write the same index under every representation we compare."""
    paths = {
        "raw": stem.with_suffix(".raw.gks"),
        "varint-dag": stem.with_suffix(".dag.gksindex"),
        "varint-nodag": stem.with_suffix(".nodag.gksindex"),
    }
    save_index(index, paths["raw"], codec="raw")
    save_index(index, paths["varint-dag"], codec="varint-dag")
    # the DAG ablation: same varint/delta posting blocks, subtree
    # sharing disabled — isolates how much of the win is structural
    write_binary_index(index, paths["varint-nodag"], use_dag=False)
    return paths


def _assert_equivalent(index, binary_path: Path, where: str) -> None:
    loaded = load_index(binary_path)
    for text, s in QUERIES:
        query = Query.parse(text, s=s)
        expected = _signature(search(index, query))
        actual = _signature(search(loaded, query))
        assert actual == expected, (
            f"binary index diverged from in-memory at {where}: {text!r}")


def _size_table() -> dict[str, dict]:
    table: dict[str, dict] = {}
    for scale in MIRROR_SCALES:
        index = _build("mirrors", scale)
        paths = _persist_all(index, _WORKDIR / f"mirrors{scale}")
        sizes = {name: path.stat().st_size
                 for name, path in paths.items()}
        _assert_equivalent(index, paths["varint-dag"],
                           f"mirrors scale={scale}")
        table[str(scale)] = {
            "bytes": sizes,
            "ratio_dag": sizes["raw"] / max(sizes["varint-dag"], 1),
            "ratio_nodag": sizes["raw"] / max(sizes["varint-nodag"], 1),
        }
    return table


def _dblp_record() -> dict:
    """The honest counter-case: one document, little verbatim reuse."""
    index = _build("dblp", 4)
    paths = _persist_all(index, _WORKDIR / "dblp4")
    sizes = {name: path.stat().st_size for name, path in paths.items()}
    return {"bytes": sizes,
            "ratio_dag": sizes["raw"] / max(sizes["varint-dag"], 1)}


def _cold_open(raw_path: Path, dag_path: Path) -> dict:
    query = Query.parse(QUERIES[0][0], s=QUERIES[0][1])

    def rounds(path: Path) -> tuple[float, float]:
        opens, firsts = [], []
        for _ in range(COLD_OPEN_ROUNDS):
            started = time.perf_counter()
            index = load_index(path)
            opened = time.perf_counter()
            search(index, query)
            done = time.perf_counter()
            opens.append((opened - started) * 1000.0)
            firsts.append((done - opened) * 1000.0)
        return statistics.median(opens), statistics.median(firsts)

    raw_open, raw_first = rounds(raw_path)
    dag_open, dag_first = rounds(dag_path)
    return {
        "raw_open_ms": raw_open,
        "raw_first_query_ms": raw_first,
        "dag_open_ms": dag_open,
        "dag_first_query_ms": dag_first,
        "open_speedup": raw_open / max(dag_open, 1e-9),
        "open_plus_query_speedup": (raw_open + raw_first)
        / max(dag_open + dag_first, 1e-9),
    }


def test_codec_benchmark_report(tmp_path):
    global _WORKDIR
    _WORKDIR = tmp_path
    sizes = _size_table()
    top = sizes[str(COLD_OPEN_SCALE)]
    cold = _cold_open(
        tmp_path / f"mirrors{COLD_OPEN_SCALE}.raw.gks",
        tmp_path / f"mirrors{COLD_OPEN_SCALE}.dag.gksindex")
    record = {
        "corpus": "mirrors (syndicated record pool)",
        "queries": [text for text, _ in QUERIES],
        "mirrors_by_scale": sizes,
        "dblp_scale4": _dblp_record(),
        "cold_open": cold,
        "cold_open_scale": COLD_OPEN_SCALE,
        "cold_open_rounds": COLD_OPEN_ROUNDS,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
    print()
    print(f"codec bench -> {RESULTS_PATH}")
    print(json.dumps(record, indent=2, sort_keys=True))
    # the claims the README repeats, enforced where they are made:
    # >= 3x on the redundancy-heavy corpus at scale >= 4, and a
    # clearly faster cold open from the lazy binary loader
    assert sizes["4"]["ratio_dag"] >= 3.0, sizes["4"]
    assert top["ratio_dag"] >= 3.0, top
    assert top["ratio_dag"] > top["ratio_nodag"], (
        "DAG sharing should beat the posting-codec-only ablation")
    assert cold["open_speedup"] > 2.0, cold
