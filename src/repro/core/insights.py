"""Deeper analytical Insights — DI (paper §2.3, Def 2.3.1, §6.2).

For the LCE nodes ``EQ`` in a query response, the Search Analysis Engine
"parses the LCE nodes" and extracts the text keywords of their *attribute
nodes* — the nodes that define each entity's context (R(e)).  Each keyword
is weighted by the summed rank of the LCE nodes whose attributes contain
it, so a keyword relevant to many high-ranked results outweighs one that is
merely frequent (the paper's ICPP-vs-SIGMOD-Record discussion).  Query
keywords are excluded.  The top-m weighted keywords, together with the
element path from the LCE node down to the keyword (the keyword's
*semantics*: ``<ip: year: 2001>``), form the DI.

DI can be applied recursively (§2.3): the top-m keywords are fed back to
GKS as a query, whose LCE nodes yield the next round of insights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.core.query import Query
from repro.core.results import GKSResponse
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository


@dataclass(frozen=True)
class Insight:
    """One DI item: a weighted attribute keyword with its semantics.

    ``path`` runs from the LCE node's tag down to the attribute tag, e.g.
    ``("inproceedings", "year")`` — rendered as ``<inproceedings: year:
    2001>``.
    """

    keyword: str          # analysed keyword (what recursion feeds back)
    value: str            # raw attribute text the keyword came from
    path: tuple[str, ...]
    weight: float
    supporting_nodes: int
    #: the whole attribute value as one analysed phrase keyword — what a
    #: query-expansion refinement should add ("marek rusinkiewicz")
    phrase_keyword: str = ""

    def render(self) -> str:
        """The paper's ``<tag: …: value>`` display form."""
        return f"<{': '.join(self.path)}: {self.value}>"


@dataclass(frozen=True)
class InsightReport:
    """DI for one response: top-m insights plus the full weighted set."""

    insights: tuple[Insight, ...]
    #: The weighted keyword set ``Sw_Q`` (analysed keyword → weight).
    weighted_keywords: dict[str, float] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.insights)

    def __len__(self) -> int:
        return len(self.insights)

    def top_keywords(self, count: int) -> list[str]:
        """Top-m keywords of ``Sw_Q`` — the recursive-DI query seed."""
        ordered = sorted(self.weighted_keywords.items(),
                         key=lambda item: (-item[1], item[0]))
        return [keyword for keyword, _ in ordered[:count]]


def attribute_nodes_of(entity: XMLNode,
                       mode: str = "context") -> list[XMLNode]:
    """The keyword-bearing nodes R(e) of an entity node.

    ``mode="attributes"`` is the strict Def 2.3.1 reading: attribute nodes
    only — leaf-with-text elements with no same-label sibling, reached
    without crossing a repeating node.

    ``mode="context"`` (default) matches the DI the paper actually reports
    (Example 2's ``<ip: author: Alok N Choudhary>``, Table 8's
    ``<author_list: Patthy L>``): every text-bearing element of the
    entity's own context, i.e. reached without crossing a *deeper entity
    node*.  Repeating leaves such as DBLP ``<author>`` are included; the
    attributes of nested entities are not — they belong to those entities.

    Entity boundaries are detected structurally (a local re-categorization
    of the subtree), so no index is needed.
    """
    if mode not in ("context", "attributes"):
        raise ValidationError(f"unknown R(e) mode {mode!r}")
    attributes: list[XMLNode] = []
    if mode == "attributes":
        _collect_strict(entity, attributes)
    else:
        from repro.index.categorize import categorize_tree
        records = categorize_tree(entity)
        _collect_context(entity, attributes, records, is_root=True)
    return attributes


def _collect_strict(node: XMLNode, out: list[XMLNode]) -> None:
    for child in node.children:
        if child.same_label_sibling_count() >= 1:
            continue  # repeating node: do not cross it
        if child.is_leaf and child.has_text:
            out.append(child)
        else:
            _collect_strict(child, out)


def _collect_context(node: XMLNode, out: list[XMLNode], records,
                     is_root: bool) -> None:
    if not is_root:
        record = records.get(node.dewey)
        if record is not None and record.is_entity:
            return  # a nested entity owns its own context
        if node.has_text:
            out.append(node)
    for child in node.children:
        _collect_context(child, out, records, is_root=False)


def discover_insights(repository: Repository, response: GKSResponse,
                      top: int = 10, analyzer: Analyzer = DEFAULT_ANALYZER,
                      mode: str = "context") -> InsightReport:
    """Compute the DI of a response (Def 2.3.1).

    Parameters
    ----------
    repository:
        The indexed data — DI extraction parses the LCE nodes (§6.2).
    response:
        A :class:`GKSResponse`; only its LCE nodes contribute.
    top:
        The tunable ``m``: how many insights to report.
    mode:
        R(e) extraction mode — see :func:`attribute_nodes_of`.
    """
    query_keywords = response.query.word_set()
    weighted: dict[str, float] = {}
    # (path, value) → [weight, supporting node count, analysed keyword]
    items: dict[tuple[tuple[str, ...], str], list] = {}

    for ranked in response.lce_nodes:
        entity = repository.node_at(ranked.dewey)
        if entity is None:
            continue
        for attribute in attribute_nodes_of(entity, mode=mode):
            assert attribute.text is not None
            value = attribute.text.strip()
            keywords = [keyword for keyword in analyzer.analyze(value)
                        if keyword not in query_keywords]
            if not keywords:
                continue  # entirely made of query keywords: excluded
            for keyword in keywords:
                weighted[keyword] = weighted.get(keyword, 0.0) + ranked.score
            path = _path_tags(entity, attribute)
            key = (path, value)
            if key in items:
                items[key][0] += ranked.score
                items[key][1] += 1
            else:
                items[key] = [ranked.score, 1, keywords[0]]

    ordered = sorted(items.items(),
                     key=lambda item: (-item[1][0], item[0]))
    insights = tuple(
        Insight(keyword=payload[2], value=value, path=path,
                weight=payload[0], supporting_nodes=payload[1],
                phrase_keyword=" ".join(analyzer.analyze(value)))
        for (path, value), payload in ordered[:top])
    return InsightReport(insights=insights, weighted_keywords=weighted)


def _path_tags(entity: XMLNode, attribute: XMLNode) -> tuple[str, ...]:
    """Element labels from the LCE node down to the attribute node."""
    return tuple(node.tag for node in attribute.path_from(entity))


def discover_recursive(repository: Repository, index, response: GKSResponse,
                       rounds: int = 1, top: int = 10, seed_keywords: int = 5,
                       analyzer: Analyzer = DEFAULT_ANALYZER
                       ) -> list[InsightReport]:
    """Recursive DI (§2.3): feed top-m keywords back as queries.

    Returns one report per round; round 0 is the plain DI of *response*.
    Recursion stops early when a round yields no keywords.
    """
    from repro.core.search import search  # local import: avoid cycle

    reports = [discover_insights(repository, response, top=top,
                                 analyzer=analyzer)]
    current = reports[0]
    for _ in range(rounds):
        seeds = current.top_keywords(seed_keywords)
        if not seeds:
            break
        next_query = Query.of(seeds, s=1)
        next_response = search(index, next_query)
        current = discover_insights(repository, next_response, top=top,
                                    analyzer=analyzer)
        reports.append(current)
    return reports
