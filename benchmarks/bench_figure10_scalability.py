"""E5 — Figure 10: response time for replicated datasets (×1, ×2, ×3).

The paper replicates SwissProt to 112/225/336 MB and shows query
processing time scaling *linearly* with data size (the number of LCE
nodes scales linearly).  We replicate the synthetic SwissProt through the
multi-document repository and check linearity of both |SL| and response
time.
"""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.core.search import search
from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table
from repro.eval.runner import figure10_series, frequency_ladder


@pytest.mark.parametrize("factor", [1, 2, 3])
def test_search_speed_replicated(factor, benchmark):
    base = load_dataset("swissprot")
    engine = GKSEngine(base.extend_replicated(factor))
    keywords = frequency_ladder(engine.index, count=6)
    query = Query.of(keywords, s=3)
    response = benchmark(lambda: search(engine.index, query))
    assert len(response) > 0


def test_figure10_series(results_writer, benchmark):
    points = benchmark.pedantic(lambda: figure10_series(),
                                rounds=1, iterations=1)
    from repro.eval.figures import render_bar_chart

    results_writer("figure10_scalability", render_table(
        ["replication", "RT (ms)", "|SL|"],
        [(factor, f"{ms:.2f}", sl) for factor, ms, sl in points],
        title="Figure 10 — response time for replicated SwissProt")
        + "\n\n" + render_bar_chart(
            "RT by replication factor",
            [(f"x{factor}", ms) for factor, ms, _ in points],
            y_label=" ms"))

    # |SL| must scale exactly linearly with the replication factor
    base_sl = points[0][2]
    for factor, _, sl in points:
        assert sl == base_sl * factor

    # and response time must not blow up super-linearly (generous 2×
    # slack per step for timer noise on small absolute times)
    base_ms = points[0][1]
    for factor, ms, _ in points[1:]:
        assert ms < base_ms * factor * 3
