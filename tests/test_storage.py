"""Persistence tests with failure injection (corrupt/partial index
files)."""

import gzip
import json

import pytest

from repro.datasets.toy import figure2a
from repro.errors import StorageError
from repro.index.builder import build_index
from repro.index.storage import (index_size_bytes, load_index, save_index)
from repro.text.analyzer import Analyzer
from repro.xmltree.repository import Repository


@pytest.fixture(scope="module")
def index():
    repo = Repository()
    repo.add_root(figure2a())
    return build_index(repo)


class TestRoundTrip:
    def test_full_round_trip(self, index, tmp_path):
        path = save_index(index, tmp_path / "idx.gz")
        loaded = load_index(path)
        assert dict(loaded.inverted.items()) == \
            dict(index.inverted.items())
        assert loaded.hashes.entity_table == index.hashes.entity_table
        assert loaded.hashes.element_table == index.hashes.element_table
        assert loaded.document_names == index.document_names
        assert loaded.stats.total_nodes == index.stats.total_nodes

    def test_analyzer_settings_persisted(self, tmp_path):
        repo = Repository.from_texts(["<r><a>publications</a></r>"])
        raw = build_index(repo, analyzer=Analyzer(use_stemming=False))
        loaded = load_index(save_index(raw, tmp_path / "raw.gz"))
        assert loaded.analyzer.use_stemming is False
        assert loaded.postings("publications")

    def test_index_size_reported(self, index, tmp_path):
        path = save_index(index, tmp_path / "idx.gz")
        assert index_size_bytes(path) == path.stat().st_size > 0

    def test_searchable_after_reload(self, index, tmp_path):
        from repro.core.query import Query
        from repro.core.search import search

        loaded = load_index(save_index(index, tmp_path / "idx.gz"))
        query = Query.of(["karen", "mike"], s=2)
        assert search(loaded, query).deweys == search(index, query).deweys


class TestFailureInjection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_index(tmp_path / "absent.gz")

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "bogus.gz"
        path.write_text("definitely not gzip")
        with pytest.raises(StorageError):
            load_index(path)

    def test_gzip_but_not_json(self, tmp_path):
        path = tmp_path / "badjson.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("{ broken json")
        with pytest.raises(StorageError):
            load_index(path)

    def test_truncated_file(self, index, tmp_path):
        path = save_index(index, tmp_path / "idx.gz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            load_index(path)

    def test_wrong_version(self, index, tmp_path):
        path = save_index(index, tmp_path / "idx.gz")
        with gzip.open(path, "rt") as handle:
            payload = json.load(handle)
        payload["version"] = 999
        with gzip.open(path, "wt") as handle:
            json.dump(payload, handle)
        with pytest.raises(StorageError) as excinfo:
            load_index(path)
        assert "version" in str(excinfo.value)

    def test_unwritable_target(self, index, tmp_path):
        with pytest.raises(StorageError):
            save_index(index, tmp_path / "no" / "such" / "dir" / "x.gz")

    def test_malformed_dewey_in_payload(self, index, tmp_path):
        import zlib

        path = save_index(index, tmp_path / "idx.gz")
        with gzip.open(path, "rt") as handle:
            envelope = json.load(handle)
        envelope["payload"]["postings"]["karen"] = ["not.a.number"]
        # recompute the checksum so the dewey parser (not the CRC check)
        # is what rejects the file
        canonical = json.dumps(envelope["payload"],
                               separators=(",", ":"), sort_keys=True)
        envelope["crc32"] = zlib.crc32(canonical.encode()) & 0xFFFFFFFF
        with gzip.open(path, "wt") as handle:
            json.dump(envelope, handle)
        from repro.errors import GKSError

        with pytest.raises(GKSError):
            load_index(path)
