"""Unit tests for query parsing (phrases, thresholds)."""

import pytest

from repro.core.query import Query, split_phrases
from repro.errors import QueryError


class TestSplitPhrases:
    def test_mixed_words_and_phrases(self):
        assert split_phrases('"Peter Buneman" database 2001') == \
            ["Peter Buneman", "database", "2001"]

    def test_adjacent_phrases(self):
        assert split_phrases('"A B" "C D"') == ["A B", "C D"]

    def test_unbalanced_quote_forgiven(self):
        assert split_phrases('alpha "beta gamma') == ["alpha",
                                                      "beta gamma"]

    def test_empty(self):
        assert split_phrases("") == []


class TestParse:
    def test_phrases_become_single_keywords(self):
        query = Query.parse('"Peter Buneman" "Wenfei Fan" 2001')
        assert query.keywords == ("peter buneman", "wenfei fan", "2001")
        assert len(query) == 3

    def test_flatten_mode(self):
        query = Query.parse('"Peter Buneman"', phrases_as_keywords=False)
        assert query.keywords == ("peter", "buneman")

    def test_analysis_applied_inside_phrases(self):
        query = Query.parse('"The Publications of Science"')
        assert query.keywords == ("public scienc",)

    def test_duplicate_keywords_collapse(self):
        query = Query.parse("data data mining")
        assert query.keywords == ("data", "mine")

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            Query.parse("the of and")  # all stop words

    def test_invalid_s_rejected(self):
        with pytest.raises(QueryError):
            Query.parse("data", s=0)


class TestThreshold:
    def test_effective_s_clamps_to_size(self):
        query = Query.of(["a", "b"], s=5)
        assert query.effective_s == 2

    def test_with_s_keeps_keywords(self):
        query = Query.of(["a", "b", "c"], s=1)
        stricter = query.with_s(3)
        assert stricter.keywords == query.keywords
        assert stricter.s == 3


class TestAccessors:
    def test_keyword_index_positions(self):
        query = Query.of(["x", "y"])
        assert query.keyword_index() == {"x": 0, "y": 1}

    def test_word_set_splits_phrases(self):
        query = Query.parse('"Peter Buneman" 2001')
        assert query.word_set() == {"peter", "buneman", "2001"}

    def test_str_rendering(self):
        assert str(Query.of(["a", "b"], s=2)) == "Q={a, b} s=2"
