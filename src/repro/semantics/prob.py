"""Probabilistic keyword search over p-documents (exact, budget-aware).

For every candidate node ``n`` this computes the possible-worlds
marginal

    P(n) = P(n exists) × P(subtree(n) holds ≥ min(s,|Q|) distinct
                           query keywords | n exists)

under the PrXML independence semantics: choices at distinct
distributional nodes are independent, a MUX node's annotated children
are one mutually exclusive choice, and deleting a node deletes its
subtree.  The result set is every node with ``P(n) ≥ threshold``,
ordered by descending probability then document order.

The evaluation is exact, not sampled.  Per document it builds the
*occurrence trie* — all Dewey prefixes of the query keywords' posting
entries — and runs one bottom-up **keyword-subset distribution** pass:
``dist[v]`` maps each subset (bitmask) of the query keywords to the
probability that exactly that subset appears in ``v``'s subtree, given
``v`` exists.  Ordinary/IND children combine by subset-union
convolution (an uncertain child contributes ``(1-p)·δ∅ + p·dist[c]``);
a MUX node's annotated children combine as the mixture
``Σ wᵢ·dist[cᵢ] + (1-Σw)·δ∅``.  Restricting to the occurrence trie is
exact because keyword-free subtrees can only contribute ``δ∅``.

Candidates are the trie nodes whose *all-present* keyword union meets
the bar — any other node has probability 0.  On a deterministic corpus
(empty tables) every candidate has probability 1 and the distribution
pass is skipped entirely, which keeps probabilistic mode within the
benchmarked 2× of strict on ordinary documents.
"""

from __future__ import annotations

from repro.core.budget import SearchBudget
from repro.core.query import Query
from repro.core.results import (GKSResponse, RankedNode, SearchProfile,
                                SemanticsInfo)
from repro.errors import ConfigError
from repro.index.builder import GKSIndex
from repro.index.probtables import ProbTables
from repro.index.sharding import ShardedIndex
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.stats import QueryStats
from repro.obs.trace import NOOP_TRACER
from repro.xmltree.dewey import Dewey

_EMPTY = ProbTables()

#: Bitmask distribution type: keyword-subset mask → probability.
Dist = dict[int, float]


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _convolve(left: Dist, right: Dist) -> Dist:
    if left == {0: 1.0}:
        return dict(right)
    out: Dist = {}
    for m1, p1 in left.items():
        for m2, p2 in right.items():
            key = m1 | m2
            out[key] = out.get(key, 0.0) + p1 * p2
    return out


def _occurrences(index: GKSIndex, keywords: tuple[str, ...]
                 ) -> dict[Dewey, int]:
    """Dewey → bitmask of the query keywords occurring directly there."""
    occ: dict[Dewey, int] = {}
    for bit, keyword in enumerate(keywords):
        for dewey in index.postings(keyword):
            occ[dewey] = occ.get(dewey, 0) | (1 << bit)
    return occ


def _union_masks(occ: dict[Dewey, int]) -> dict[Dewey, int]:
    """Every prefix of an occurrence → union mask of its subtree."""
    union: dict[Dewey, int] = {}
    for dewey, mask in occ.items():
        for depth in range(1, len(dewey) + 1):
            prefix = dewey[:depth]
            union[prefix] = union.get(prefix, 0) | mask
    return union


def _distributions(union: dict[Dewey, int], occ: dict[Dewey, int],
                   tables: ProbTables) -> dict[Dewey, Dist]:
    """One bottom-up subset-distribution pass over the occurrence trie."""
    children: dict[Dewey, list[Dewey]] = {}
    for dewey in union:
        if len(dewey) > 1:
            children.setdefault(dewey[:-1], []).append(dewey)
    dist: dict[Dewey, Dist] = {}
    for dewey in sorted(union, key=len, reverse=True):
        base: Dist = {occ.get(dewey, 0): 1.0}
        mux = tables.kinds.get(dewey) == "MUX"
        mixture: Dist = {}
        weight_total = 0.0
        for child in children.get(dewey, ()):
            branch = dist[child]
            prob = tables.edge_p.get(child)
            if mux and prob is not None:
                # Annotated MUX children form one exclusive choice.
                weight_total += prob
                for mask, share in branch.items():
                    mixture[mask] = mixture.get(mask, 0.0) + prob * share
                continue
            if prob is not None and prob < 1.0:
                mixed: Dist = {0: 1.0 - prob}
                for mask, share in branch.items():
                    mixed[mask] = mixed.get(mask, 0.0) + prob * share
                branch = mixed
            base = _convolve(base, branch)
        if mixture or weight_total:
            leftover = 1.0 - weight_total
            if leftover > 0.0:
                mixture[0] = mixture.get(0, 0.0) + leftover
            base = _convolve(base, mixture)
        dist[dewey] = base
    return dist


def _evaluate_index(index: GKSIndex, query: Query, threshold: float,
                    budget: SearchBudget | None, tracer,
                    counters: dict[str, int]) -> tuple[list[RankedNode], bool]:
    """Evaluate one (monolithic or shard) index; returns (nodes, tripped)."""
    tables = index.probabilities if isinstance(index.probabilities,
                                               ProbTables) else _EMPTY
    keywords = query.keywords
    need = query.s

    with tracer.span("postings") as span:
        occ = _occurrences(index, keywords)
        span.add("occurrences", len(occ))
    counters["postings"] += len(occ)
    if budget is not None and budget.checkpoint("merge", len(occ), len(occ)):
        return [], True

    union = _union_masks(occ)
    candidates = sorted(dewey for dewey, mask in union.items()
                        if _popcount(mask) >= need)
    counters["candidates"] += len(candidates)

    dist: dict[Dewey, Dist] | None = None
    if tables:
        with tracer.span("distributions") as span:
            dist = _distributions(union, occ, tables)
            span.add("trie_nodes", len(dist))

    nodes: list[RankedNode] = []
    halted = False
    with tracer.span("evaluate") as span:
        for processed, dewey in enumerate(candidates):
            if budget is not None and budget.checkpoint(
                    "prob", processed, len(candidates)):
                halted = True
                break
            if budget is not None and not budget.admit_node(
                    len(nodes), len(candidates)):
                halted = True
                break
            if dist is None:
                probability = 1.0
            else:
                tail = sum(share for mask, share in dist[dewey].items()
                           if _popcount(mask) >= need)
                probability = tables.existence(dewey) * tail
            if probability < threshold:
                continue
            mask = union[dewey]
            matched = tuple(kw for bit, kw in enumerate(keywords)
                            if mask >> bit & 1)
            nodes.append(RankedNode(
                dewey=dewey, score=probability,
                distinct_keywords=_popcount(mask),
                matched_keywords=matched, is_lce=False,
                estimated_keywords=_popcount(mask),
                probability=probability))
        span.add("emitted", len(nodes))
    return nodes, halted


def probabilistic_search(index: "GKSIndex | ShardedIndex", query: Query,
                         *, threshold: float = 0.0,
                         budget: SearchBudget | None = None,
                         tracer=None,
                         registry: MetricsRegistry | None = None
                         ) -> GKSResponse:
    """Run one probabilistic-mode query and return the ranked response.

    *index* must carry compiled :class:`ProbTables` (attach at build
    time via :func:`repro.semantics.pdoc.attach_tables`); an index with
    no tables is treated as fully deterministic — every candidate gets
    probability 1.  Sharded indexes are evaluated shard by shard
    (documents live whole in one shard, so per-shard results merge by
    concatenation) under the shared *budget*.
    """
    if tracer is None:
        tracer = NOOP_TRACER
    if registry is None:
        registry = global_registry()
    if not 0.0 <= threshold <= 1.0:
        raise ConfigError(
            f"probability threshold {threshold!r} outside [0, 1]")
    clock = tracer.clock
    effective = query.with_s(query.effective_s)
    if budget is not None:
        budget.start()

    counters = {"postings": 0, "candidates": 0}
    nodes: list[RankedNode] = []
    with tracer.span("prob_search", query=" ".join(effective.keywords),
                     s=effective.s, threshold=threshold) as root:
        started = clock()
        if isinstance(index, ShardedIndex):
            for shard in index.shards:
                with tracer.span("shard", shard=shard.shard_id):
                    part, halted = _evaluate_index(
                        shard.index, effective, threshold, budget, tracer,
                        counters)
                nodes.extend(part)
                if halted:
                    break
        else:
            nodes, _ = _evaluate_index(index, effective, threshold,
                                       budget, tracer, counters)
        nodes.sort(key=lambda node: (-node.score, node.dewey))
        finished = clock()
        tripped = budget is not None and budget.tripped
        root.set(mode="probabilistic", emitted=len(nodes))
        if tripped:
            root.set(degraded=True, trip_stage=budget.report.stage,
                     trip_reason=budget.report.reason)

    seconds = finished - started
    registry.counter(
        "gks_semantics_searches_total",
        help="Searches served by the repro.semantics subsystem."
    ).inc(labels={"mode": "probabilistic"})
    registry.counter(
        "gks_semantics_prob_candidates_total",
        help="Candidate nodes evaluated by probabilistic search."
    ).inc(counters["candidates"])
    registry.histogram(
        "gks_semantics_seconds",
        help="Wall time of semantics-mode searches."
    ).observe(seconds, labels={"mode": "probabilistic"})

    profile = SearchProfile(merged_list_size=counters["postings"],
                            lcp_entries=0, lce_nodes=0, seconds=seconds,
                            merge_seconds=0.0, rank_seconds=seconds)
    stats = QueryStats(total_seconds=seconds, rank_seconds=seconds,
                       postings_scanned=counters["postings"],
                       nodes_emitted=len(nodes),
                       budget_trips=1 if tripped else 0,
                       trip_stage=budget.report.stage if tripped else None,
                       trip_reason=budget.report.reason if tripped else None,
                       degraded=tripped, mode="probabilistic",
                       semantics_candidates=counters["candidates"])
    return GKSResponse(query=effective, nodes=tuple(nodes), profile=profile,
                       degraded=tripped,
                       degradation=budget.report if tripped else None,
                       stats=stats,
                       semantics=SemanticsInfo(mode="probabilistic",
                                               threshold=threshold))
