"""JSON → labeled-tree adapter.

The paper opens with "XML and JSON have become the default formats to
exchange information"; the GKS model itself is format-agnostic — it only
needs a labeled ordered tree with Dewey ids.  This adapter maps JSON
values onto :class:`XMLNode` trees so the whole pipeline (categorization,
indexing, search, ranking, DI) runs on JSON documents unchanged.

Mapping rules (chosen so the node-categorization model sees the same
structure a normalized XML design would produce):

* an **object** becomes an element whose keys are child elements;
* an **array** under key ``k`` becomes repeated ``k`` elements — exactly
  the repeating-node pattern of §2.2 (``"authors": ["a", "b"]`` ↔
  ``<authors>a</authors><authors>b</authors>``);
* a **scalar** becomes the text value of its element (attribute node);
* array-of-arrays and array-of-objects nest accordingly; a top-level
  array is wrapped in ``item`` elements;
* ``null`` becomes an empty element; booleans/numbers are rendered with
  JSON spelling (``true``, ``3.14``).

Tag names are sanitised to XML-name-like tokens (keyword search analyses
them anyway, so fidelity of punctuation is irrelevant).
"""

from __future__ import annotations

import json
from typing import Any

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLDocument

_JSON_SCALARS = (str, int, float, bool, type(None))


def sanitize_tag(key: str) -> str:
    """Make a JSON object key usable as an element label."""
    cleaned = "".join(ch if ch.isalnum() or ch in "_-." else "_"
                      for ch in str(key))
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"f_{cleaned}" if cleaned else "field"
    return cleaned


def _scalar_text(value: Any) -> str | None:
    if value is None:
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def json_to_document(data: Any, doc_id: int = 0, root_tag: str = "root",
                     name: str | None = None) -> XMLDocument:
    """Convert a parsed JSON value into an :class:`XMLDocument`."""
    root = XMLNode(root_tag, (doc_id,))
    _attach(root, data, item_tag="item")
    if isinstance(data, _JSON_SCALARS):
        root.text = _scalar_text(data)
    return XMLDocument(root, name=name)


def parse_json_document(text: str, doc_id: int = 0, root_tag: str = "root",
                        name: str | None = None) -> XMLDocument:
    """Parse JSON text into an :class:`XMLDocument`."""
    return json_to_document(json.loads(text), doc_id=doc_id,
                            root_tag=root_tag, name=name)


def _attach(parent: XMLNode, value: Any, item_tag: str) -> None:
    """Attach a non-scalar JSON value's content under *parent*."""
    if isinstance(value, dict):
        for key, child_value in value.items():
            _attach_field(parent, sanitize_tag(key), child_value)
    elif isinstance(value, list):
        for element in value:
            _attach_field(parent, item_tag, element)


def _attach_field(parent: XMLNode, tag: str, value: Any) -> None:
    if isinstance(value, list):
        # arrays repeat their key: the §2.2 repeating-node pattern
        for element in value:
            _attach_field(parent, tag, element)
        return
    if isinstance(value, dict):
        child = parent.add_child(tag)
        _attach(child, value, item_tag="item")
        return
    parent.add_child(tag, text=_scalar_text(value))
