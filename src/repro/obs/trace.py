"""Nested wall-time spans for the query pipeline.

A :class:`Tracer` produces a tree of :class:`Span` objects — one span per
pipeline stage, nested under the span that was open when it started.
Spans carry a duration (by the tracer's clock), free-form attributes and
integer counters; :func:`render_span_tree` pretty-prints the tree the CLI
shows under ``gks search --trace``.

The clock is injectable (pass a :class:`repro.testing.faults.FakeClock`
for deterministic duration assertions).  When tracing is off, the shared
:data:`NOOP_TRACER` hands out one reusable do-nothing span, so the
instrumented hot path allocates nothing and pays only an attribute lookup
and a no-op context-manager call per stage.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

#: The process-wide monotonic clock all pipeline timing flows through.
#: Core and index code must read time via this name (or an injected
#: clock) rather than calling ``time.perf_counter`` directly, so every
#: duration in the system answers to one injectable source — the lint
#: rule T001 enforces this discipline mechanically.
DEFAULT_CLOCK: Callable[[], float] = time.perf_counter


class Span:
    """One timed region: a node of the trace tree."""

    __slots__ = ("name", "started_s", "ended_s", "attributes", "counters",
                 "children", "_tracer")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self.started_s: float | None = None
        self.ended_s: float | None = None
        self.attributes: dict = {}
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self._tracer = tracer

    # -- recording ------------------------------------------------------
    def set(self, **attributes) -> "Span":
        """Attach free-form attributes (query text, degraded flag, ...)."""
        self.attributes.update(attributes)
        return self

    def add(self, counter: str, amount: int = 1) -> "Span":
        """Bump an integer counter on this span (postings scanned, ...)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._close(self)

    @property
    def duration_s(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.started_s is None or self.ended_s is None:
            return 0.0
        return self.ended_s - self.started_s

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named *name* in this subtree, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-able rendering of the subtree."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name!r} {self.duration_s * 1000:.3f} ms "
                f"children={len(self.children)}>")


class Tracer:
    """Builds span trees; one tracer may record many root spans.

    Use as::

        tracer = Tracer()
        with tracer.span("search") as root:
            with tracer.span("merge") as span:
                ...
                span.add("sl_entries", len(sl))
        print(render_span_tree(tracer.roots[-1]))
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else DEFAULT_CLOCK
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes) -> Span:
        """A new span, nested under the currently open one on entry."""
        span = Span(name, self)
        if attributes:
            span.set(**attributes)
        return span

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def add(self, counter: str, amount: int = 1) -> None:
        """Bump a counter on the innermost open span (no-op when none)."""
        if self._stack:
            self._stack[-1].add(counter, amount)

    # -- span callbacks -------------------------------------------------
    def _open(self, span: Span) -> None:
        span.started_s = self.clock()
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        span.ended_s = self.clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)


class _NullSpan:
    """The do-nothing span the no-op tracer hands out (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, **attributes) -> "_NullSpan":
        return self

    def add(self, counter: str, amount: int = 1) -> "_NullSpan":
        return self

    duration_s = 0.0


class NullTracer:
    """Tracing disabled: every ``span()`` is the same inert object.

    Exposes the same ``clock`` attribute as :class:`Tracer` so the
    pipeline reads stage timestamps from one injectable source whether or
    not spans are being recorded.
    """

    enabled = False
    roots: tuple = ()

    __slots__ = ("clock",)

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else DEFAULT_CLOCK

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def add(self, counter: str, amount: int = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Shared default tracer: zero allocation, zero recording.
NOOP_TRACER = NullTracer()


def render_span_tree(span: Span, indent: str = "") -> str:
    """Pretty-print a span subtree, one line per span::

        search  1.84 ms  keywords=2 s=2
        |- merge  0.41 ms  sl_entries=7
        |- lcp  0.22 ms  entries=3
        |- lce  0.30 ms  nodes=2
        `- rank  0.55 ms  ranked=4
    """
    lines: list[str] = []
    _render(span, "", "", lines)
    return "\n".join(lines)


def _render(span: Span, lead: str, child_lead: str,
            lines: list[str]) -> None:
    details = {**span.counters, **span.attributes}
    suffix = "  " + " ".join(f"{key}={value}"
                             for key, value in details.items()) \
        if details else ""
    lines.append(f"{lead}{span.name}  {span.duration_s * 1000:.2f} ms"
                 f"{suffix}")
    for position, child in enumerate(span.children):
        last = position == len(span.children) - 1
        branch = "`- " if last else "|- "
        extend = "   " if last else "|  "
        _render(child, child_lead + branch, child_lead + extend, lines)
