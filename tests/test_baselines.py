"""Unit tests for the SLCA/ELCA/naïve baselines, pinned to Table 1 and
cross-checked against the brute-force oracles."""

import pytest

from repro.baselines.bruteforce import (brute_candidates, brute_elca,
                                        brute_slca)
from repro.baselines.elca import all_keyword_closure, elca
from repro.baselines.lca import (closest_match, left_match,
                                 remove_ancestors, right_match)
from repro.baselines.naive_gks import (keyword_subsets, naive_gks,
                                       subset_count)
from repro.core.query import Query
from repro.index.builder import build_index
from repro.xmltree.repository import Repository


class TestMatchPrimitives:
    POSTINGS = [(0, 1), (0, 3), (0, 5)]

    def test_left_match(self):
        assert left_match(self.POSTINGS, (0, 4)) == (0, 3)
        assert left_match(self.POSTINGS, (0, 0)) is None
        assert left_match(self.POSTINGS, (0, 3)) == (0, 3)

    def test_right_match(self):
        assert right_match(self.POSTINGS, (0, 2)) == (0, 3)
        assert right_match(self.POSTINGS, (0, 9)) is None

    def test_closest_match_prefers_deeper_lca(self):
        postings = [(0, 0, 9), (0, 2, 0)]
        # anchor inside subtree (0,2): the right neighbour shares a longer
        # prefix than the left one
        assert closest_match(postings, (0, 2, 5)) == (0, 2, 0)

    def test_remove_ancestors(self):
        nodes = [(0,), (0, 1), (0, 1, 2), (0, 2)]
        assert remove_ancestors(nodes) == [(0, 1, 2), (0, 2)]

    def test_remove_ancestors_keeps_duplicates_once(self):
        assert remove_ancestors([(0, 1), (0, 1)]) == [(0, 1)]


class TestTable1Baselines:
    def test_q1_slca_is_x2(self, figure1_index, fig1_ids):
        from repro.baselines.slca import slca_indexed_lookup_eager
        query = Query.of(["a", "b", "c"])
        assert slca_indexed_lookup_eager(figure1_index, query) == \
            [fig1_ids["x2"]]

    def test_q1_elca_is_x1_and_x2(self, figure1_index, fig1_ids):
        query = Query.of(["a", "b", "c"])
        assert elca(figure1_index, query) == [fig1_ids["x1"],
                                              fig1_ids["x2"]]

    def test_q2_null_for_both(self, figure1_index):
        from repro.baselines.slca import slca_indexed_lookup_eager
        query = Query.of(["a", "b", "e"])
        assert slca_indexed_lookup_eager(figure1_index, query) == []
        assert elca(figure1_index, query) == []

    def test_q3_both_return_root(self, figure1_index, fig1_ids):
        from repro.baselines.slca import slca_indexed_lookup_eager
        query = Query.of(["a", "b", "c", "d"])
        assert slca_indexed_lookup_eager(figure1_index, query) == \
            [fig1_ids["r"]]
        assert elca(figure1_index, query) == [fig1_ids["r"]]


class TestCrossValidation:
    CASES = [
        ["a"], ["a", "b"], ["a", "b", "c"], ["a", "b", "c", "d"],
        ["d"], ["d", "f"], ["c", "d"], ["a", "d"], ["b", "d", "f"],
    ]

    @pytest.mark.parametrize("keywords", CASES)
    def test_slca_variants_agree_with_oracle(self, figure1_repo,
                                             figure1_index, keywords):
        from repro.baselines.slca import (slca_indexed_lookup_eager,
                                          slca_scan)
        query = Query.of(keywords)
        oracle = brute_slca(figure1_repo, query)
        assert slca_indexed_lookup_eager(figure1_index, query) == oracle
        assert slca_scan(figure1_index, query) == oracle

    @pytest.mark.parametrize("keywords", CASES)
    def test_elca_agrees_with_oracle(self, figure1_repo, figure1_index,
                                     keywords):
        query = Query.of(keywords)
        assert elca(figure1_index, query) == \
            brute_elca(figure1_repo, query)

    def test_multi_document_slca(self):
        repo = Repository.from_texts(
            ["<r><a>karen mike</a></r>", "<r><b>karen</b><c>mike</c></r>"])
        index = build_index(repo)
        from repro.baselines.slca import slca_indexed_lookup_eager
        query = Query.of(["karen", "mike"])
        assert slca_indexed_lookup_eager(index, query) == \
            brute_slca(repo, query) == [(0, 0), (1,)]


class TestClosure:
    def test_closure_is_ancestor_closed(self, figure1_index):
        query = Query.of(["a", "b", "c"])
        closure = set(all_keyword_closure(figure1_index, query))
        for dewey in closure:
            if len(dewey) > 1:
                assert dewey[:-1] in closure


class TestNaiveGKS:
    def test_subset_enumeration_counts(self):
        query = Query.of(["a", "b", "c", "d"], s=2)
        subsets = keyword_subsets(query)
        assert len(subsets) == subset_count(4, 2) == 11

    def test_subset_count_lemma3_growth(self):
        # Lemma 3: s ≤ n/2 → at least 2^(n/2) subsets
        for n in (4, 6, 8, 10):
            assert subset_count(n, n // 2) >= 2 ** (n // 2)

    def test_naive_gks_covers_gks_response(self, figure1_repo,
                                           figure1_index):
        # every GKS response node contains some subset's SLCA region:
        # the naive union must contain a descendant-or-self of each
        from repro.core.search import search
        from repro.xmltree.dewey import is_ancestor_or_self

        query = Query.of(["a", "b", "c", "d"], s=2)
        gks_nodes = search(figure1_index, query).deweys
        naive_nodes = naive_gks(figure1_index, query)
        for dewey in gks_nodes:
            assert any(is_ancestor_or_self(dewey, other)
                       for other in naive_nodes)

    def test_naive_gks_is_sorted_and_unique(self, figure1_index):
        query = Query.of(["a", "b", "c"], s=1)
        result = naive_gks(figure1_index, query)
        assert result == sorted(set(result))


class TestBruteCandidates:
    def test_candidates_monotone_in_s(self, figure1_repo):
        query = Query.of(["a", "b", "c", "d"])
        sizes = [len(brute_candidates(figure1_repo, query.with_s(s)))
                 for s in (1, 2, 3, 4)]
        assert sizes == sorted(sizes, reverse=True)

    def test_candidates_include_all_gks_nodes(self, figure1_repo,
                                              figure1_index):
        from repro.core.search import search

        query = Query.of(["a", "b", "c", "d"], s=2)
        candidates = set(brute_candidates(figure1_repo, query))
        for dewey in search(figure1_index, query).deweys:
            assert dewey in candidates
