"""Static analysis for the GKS reproduction: lint + deep invariants.

Two complementary halves:

* :mod:`repro.analysis.lint` — an AST lint engine with a pluggable rule
  registry enforcing the architecture DAG, timing discipline, the typed
  error surface, mutability hygiene and fork safety
  (:mod:`repro.analysis.rules`, :mod:`repro.analysis.layering`);
* :mod:`repro.analysis.invariants` — a deep data-level verifier auditing
  built indexes and saved stores beyond what checksums can prove.

CLI entry points: ``gks lint`` and ``gks check-index --deep``.
"""

from repro.analysis.concurrency import LockSite, collect_locks
from repro.analysis.findings import Finding, render_findings
from repro.analysis.invariants import (INVARIANT_NAMES, InvariantViolation,
                                       verify_index, verify_segmented_store,
                                       verify_store)
from repro.analysis.lint import (ModuleInfo, Rule, default_rules,
                                 lint_modules, lint_paths, register,
                                 rule_catalog)

__all__ = [
    "Finding", "render_findings",
    "ModuleInfo", "Rule", "register", "default_rules", "rule_catalog",
    "lint_modules", "lint_paths",
    "LockSite", "collect_locks",
    "InvariantViolation", "verify_index", "verify_segmented_store",
    "verify_store", "INVARIANT_NAMES",
]
