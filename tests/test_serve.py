"""The serving subsystem: broker semantics, HTTP front end, loadgen.

Concurrency here is deterministic, not sleepy: engine executions are
blocked on events (``GateEngine``), slowness is virtual
(:class:`~repro.testing.faults.SlowEngine` with a
:class:`~repro.testing.faults.FakeClock` sleeper), and deadlines advance
by ``fake.advance`` — no test in this file waits on wall-clock time.
"""

from __future__ import annotations

import json
import random
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import SearchBudget
from repro.core.config import EngineConfig, Texts
from repro.core.engine import GKSEngine
from repro.errors import ConfigError, Overloaded, QueryError, SearchTimeout
from repro.obs.metrics import MetricsRegistry
from repro.serve import (LoadGenerator, OpenLoopSchedule, ServeConfig,
                         ServeHTTPServer, ServerCore, percentile,
                         serve_http)
from repro.testing import BurstyArrivals, FakeClock, SlowEngine

pytestmark = pytest.mark.serve

WORDS = ["apple", "banana", "cherry", "date", "elder", "fig"]


def _corpus(documents: int = 6, items: int = 4, seed: int = 7) -> list[str]:
    rng = random.Random(seed)
    docs = []
    for _ in range(documents):
        parts = []
        for _ in range(items):
            first, second, third = rng.sample(WORDS, 3)
            parts.append(f"<item><name>{first} {second}</name>"
                         f"<tag>{third}</tag></item>")
        docs.append(f"<doc>{''.join(parts)}</doc>")
    return docs


def _engine(shards: int = 1, **config_kwargs) -> GKSEngine:
    config = EngineConfig(shards=shards, **config_kwargs)
    return GKSEngine.open(Texts(_corpus()), config=config)


class GateEngine:
    """Blocks every search on an event — deterministic concurrency."""

    def __init__(self, engine) -> None:
        self._engine = engine
        self.entered = threading.Semaphore(0)
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def _gate(self) -> None:
        with self._lock:
            self.calls += 1
        self.entered.release()
        assert self.release.wait(timeout=10), "gate never released"

    def search(self, *args, **kwargs):
        self._gate()
        return self._engine.search(*args, **kwargs)

    def search_top_k(self, *args, **kwargs):
        self._gate()
        return self._engine.search_top_k(*args, **kwargs)


# ---------------------------------------------------------------------------
# SearchBudget.remaining_s / subbudget(rebase=True)
# ---------------------------------------------------------------------------
class TestRemainingS:
    def test_none_without_deadline(self):
        assert SearchBudget().remaining_s() is None

    def test_counts_down_and_clamps(self):
        fake = FakeClock()
        budget = SearchBudget(deadline_s=2.0, clock=fake).start()
        fake.advance(0.5)
        assert budget.remaining_s() == pytest.approx(1.5)
        fake.advance(5.0)
        assert budget.remaining_s() == 0.0

    def test_unstarted_budget_has_full_deadline(self):
        budget = SearchBudget(deadline_s=3.0, clock=FakeClock())
        assert budget.remaining_s() == pytest.approx(3.0)

    def test_report_carries_remaining(self):
        fake = FakeClock()
        budget = SearchBudget(deadline_s=1.0, clock=fake).start()
        fake.advance(2.0)
        assert budget.checkpoint("merge", 1)
        assert budget.report.elapsed_s == pytest.approx(2.0)
        assert budget.report.remaining_s == 0.0

    def test_resource_trip_reports_headroom(self):
        fake = FakeClock()
        budget = SearchBudget(deadline_s=10.0, max_sl=2, clock=fake).start()
        kept = budget.admit_sl([1, 2, 3])
        assert kept == [1, 2]
        assert budget.report.reason == "max_sl"
        assert budget.report.remaining_s == pytest.approx(10.0)

    def test_trip_without_deadline_reports_none(self):
        budget = SearchBudget(max_sl=1, clock=FakeClock()).start()
        budget.admit_sl([1, 2])
        assert budget.report.remaining_s is None


class TestRebasedSubbudget:
    def test_rebase_deadline_is_parent_remaining(self):
        fake = FakeClock()
        parent = SearchBudget(deadline_s=2.0, clock=fake).start()
        fake.advance(0.75)
        child = parent.subbudget(rebase=True)
        assert child.deadline_s == pytest.approx(1.25)

    def test_rebase_copies_caps_and_arms_fresh(self):
        fake = FakeClock()
        parent = SearchBudget(deadline_s=4.0, max_sl=9, max_nodes=3,
                              clock=fake).start()
        fake.advance(1.0)
        child = parent.subbudget(rebase=True).start()
        assert (child.max_sl, child.max_nodes) == (9, 3)
        fake.advance(0.5)
        assert child.elapsed() == pytest.approx(0.5)
        assert child.remaining_s() == pytest.approx(2.5)

    def test_default_subbudget_shares_start_and_drops_caps(self):
        fake = FakeClock()
        parent = SearchBudget(deadline_s=2.0, max_sl=9, clock=fake).start()
        fake.advance(1.5)
        child = parent.subbudget()
        assert child.max_sl is None
        assert child.elapsed() == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# Equivalence: served == direct, across shard counts
# ---------------------------------------------------------------------------
def _assert_equivalent(served, direct):
    assert served.nodes == direct.nodes
    assert served.degraded == direct.degraded
    if direct.degradation is None:
        assert served.degradation is None
    else:
        assert served.degradation.stage == direct.degradation.stage
        assert served.degradation.reason == direct.degradation.reason
        assert (served.degradation.processed
                == direct.degradation.processed)
    for counter in ("postings_scanned", "lcp_entries", "lce_nodes",
                    "nodes_emitted", "cache_hit", "degraded"):
        assert (getattr(served.stats, counter)
                == getattr(direct.stats, counter)), counter


@pytest.mark.parametrize("shards", [1, 2, 4])
class TestEquivalence:
    def test_cold_cache_responses_identical(self, shards):
        served_engine = _engine(shards=shards)
        direct_engine = _engine(shards=shards)
        queries = ["apple banana", "cherry", "banana cherry fig",
                   "date elder"]
        with ServerCore(served_engine,
                        registry=MetricsRegistry()) as core:
            for text in queries:
                _assert_equivalent(core.search(text),
                                   direct_engine.search(text))

    def test_engine_budget_degraded_paths_identical(self, shards):
        served_engine = _engine(
            shards=shards, budget=SearchBudget(max_sl=2, max_nodes=1))
        direct_engine = _engine(
            shards=shards, budget=SearchBudget(max_sl=2, max_nodes=1))
        with ServerCore(served_engine, ServeConfig(workers=1),
                        registry=MetricsRegistry()) as core:
            served = core.search("apple banana cherry")
            direct = direct_engine.search("apple banana cherry")
        assert served.degraded and direct.degraded
        _assert_equivalent(served, direct)

    def test_top_k_identical(self, shards):
        served_engine = _engine(shards=shards)
        direct_engine = _engine(shards=shards)
        with ServerCore(served_engine,
                        registry=MetricsRegistry()) as core:
            served = core.search("apple banana", k=2)
            direct = direct_engine.search_top_k("apple banana", k=2)
        _assert_equivalent(served, direct)


@settings(max_examples=20, deadline=None)
@given(keywords=st.lists(st.sampled_from(WORDS), min_size=1, max_size=4,
                         unique=True),
       s=st.integers(min_value=1, max_value=3))
def test_equivalence_property(keywords, s, served_cores, direct_engines):
    text = " ".join(keywords)
    for shards in (1, 2, 4):
        served = served_cores[shards].search(text, s)
        direct = direct_engines[shards].search(text, s=s)
        _assert_equivalent(served, direct)


@pytest.fixture(scope="module")
def direct_engines():
    return {shards: _engine(shards=shards) for shards in (1, 2, 4)}


@pytest.fixture(scope="module")
def served_cores():
    cores = {shards: ServerCore(_engine(shards=shards),
                                registry=MetricsRegistry())
             for shards in (1, 2, 4)}
    yield cores
    for core in cores.values():
        core.close()


# ---------------------------------------------------------------------------
# Singleflight coalescing
# ---------------------------------------------------------------------------
class TestCoalescing:
    def test_duplicates_share_one_search(self):
        registry = MetricsRegistry()
        gate = GateEngine(_engine())
        with ServerCore(gate, ServeConfig(workers=2),
                        registry=registry) as core:
            leader = core.submit("apple banana")
            assert gate.entered.acquire(timeout=10)
            followers = [core.submit("apple banana") for _ in range(3)]
            assert all(f is leader for f in followers)
            gate.release.set()
            response = leader.result(timeout=10)
        assert gate.calls == 1
        assert registry.counter("gks_serve_coalesced_total").total() == 3
        assert registry.counter("gks_serve_requests_total").value(
            {"outcome": "coalesced"}) == 3
        assert len(response.nodes) > 0

    def test_different_queries_do_not_coalesce(self):
        gate = GateEngine(_engine())
        with ServerCore(gate, ServeConfig(workers=2),
                        registry=MetricsRegistry()) as core:
            first = core.submit("apple banana")
            assert gate.entered.acquire(timeout=10)
            second = core.submit("cherry")
            assert second is not first
            gate.release.set()
            first.result(timeout=10)
            second.result(timeout=10)
        assert gate.calls == 2

    def test_completion_ends_the_flight(self):
        gate = GateEngine(_engine())
        gate.release.set()  # no blocking: searches run straight through
        with ServerCore(gate, ServeConfig(workers=1),
                        registry=MetricsRegistry()) as core:
            core.search("apple banana")
            core.search("apple banana")
        # second submission found no in-flight leader (the first had
        # finished) — it ran its own search (an engine LRU hit, but an
        # engine call nonetheless)
        assert gate.calls == 2

    def test_coalesce_disabled(self):
        gate = GateEngine(_engine())
        registry = MetricsRegistry()
        with ServerCore(gate, ServeConfig(workers=2, coalesce=False),
                        registry=registry) as core:
            first = core.submit("apple banana")
            assert gate.entered.acquire(timeout=10)
            second = core.submit("apple banana")
            assert second is not first
            gate.release.set()
            first.result(timeout=10)
            second.result(timeout=10)
        assert gate.calls == 2
        assert registry.counter("gks_serve_coalesced_total").total() == 0

    def test_deadlined_requests_do_not_coalesce(self):
        # budgeted responses are request-specific; they must not share
        gate = GateEngine(_engine())
        with ServerCore(gate, ServeConfig(workers=2),
                        registry=MetricsRegistry()) as core:
            first = core.submit("apple banana", deadline_s=30.0)
            assert gate.entered.acquire(timeout=10)
            second = core.submit("apple banana", deadline_s=30.0)
            assert second is not first
            gate.release.set()
            first.result(timeout=10)
            second.result(timeout=10)
        assert gate.calls == 2


# ---------------------------------------------------------------------------
# Admission control and load shedding
# ---------------------------------------------------------------------------
class TestShedding:
    def test_queue_full_sheds_before_engine_work(self):
        registry = MetricsRegistry()
        gate = GateEngine(_engine())
        config = ServeConfig(workers=1, queue_capacity=2, coalesce=False)
        with ServerCore(gate, config, registry=registry) as core:
            running = core.submit("apple")
            assert gate.entered.acquire(timeout=10)  # worker busy
            queued = [core.submit("banana"), core.submit("cherry")]
            calls_before = gate.calls
            for _ in range(3):
                with pytest.raises(Overloaded) as caught:
                    core.submit("date")
                assert caught.value.reason == "queue-full"
            assert gate.calls == calls_before  # shed did no engine work
            gate.release.set()
            running.result(timeout=10)
            for future in queued:
                future.result(timeout=10)
        assert registry.counter("gks_serve_shed_total").value(
            {"reason": "queue-full"}) == 3
        assert registry.counter("gks_serve_shed_total").total() == 3
        assert registry.counter("gks_serve_requests_total").value(
            {"outcome": "shed"}) == 3

    def test_expired_deadline_shed_at_admission(self):
        registry = MetricsRegistry()
        with ServerCore(_engine(), registry=registry) as core:
            with pytest.raises(Overloaded) as caught:
                core.submit("apple", deadline_s=0.0)
            assert caught.value.reason == "deadline"
        assert registry.counter("gks_serve_shed_total").value(
            {"reason": "deadline"}) == 1

    def test_draining_sheds_new_arrivals(self):
        registry = MetricsRegistry()
        core = ServerCore(_engine(), registry=registry)
        accepted = core.search("apple banana")
        core.drain()
        with pytest.raises(Overloaded) as caught:
            core.submit("apple banana")
        assert caught.value.reason == "draining"
        assert registry.counter("gks_serve_shed_total").value(
            {"reason": "draining"}) == 1
        core.close()  # idempotent with drain already done
        assert len(accepted.nodes) > 0

    def test_queued_deadline_expiry_times_out_without_engine_work(self):
        fake = FakeClock()
        registry = MetricsRegistry()
        gate = GateEngine(_engine())
        config = ServeConfig(workers=1, queue_capacity=8, coalesce=False)
        with ServerCore(gate, config, registry=registry,
                        clock=fake) as core:
            running = core.submit("apple")
            assert gate.entered.acquire(timeout=10)
            doomed = core.submit("banana", deadline_s=0.5)
            fake.advance(1.0)  # its whole deadline passes in the queue
            calls_before = gate.calls
            gate.release.set()
            running.result(timeout=10)
            with pytest.raises(SearchTimeout):
                doomed.result(timeout=10)
            assert gate.calls == calls_before  # never reached the engine
        assert registry.counter("gks_serve_timeouts_total").total() == 1
        assert registry.counter("gks_serve_requests_total").value(
            {"outcome": "timeout"}) == 1

    def test_queue_wait_rebases_the_engine_deadline(self):
        fake = FakeClock()
        engine = _engine()
        captured = {}
        original = engine.search

        def spy(*args, **kwargs):
            captured["budget"] = kwargs.get("budget")
            return original(*args, **kwargs)

        engine.search = spy  # type: ignore[method-assign]
        gate = GateEngine(engine)
        config = ServeConfig(workers=1, queue_capacity=8, coalesce=False)
        with ServerCore(gate, config, registry=MetricsRegistry(),
                        clock=fake) as core:
            running = core.submit("apple")
            assert gate.entered.acquire(timeout=10)
            waiting = core.submit("banana", deadline_s=2.0)
            fake.advance(0.5)  # spends half a second queued
            gate.release.set()
            running.result(timeout=10)
            waiting.result(timeout=10)
        budget = captured["budget"]
        assert budget is not None
        assert budget.deadline_s == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# TTL cache
# ---------------------------------------------------------------------------
class TestTTLCache:
    def test_hit_within_ttl_and_expiry_after(self):
        fake = FakeClock()
        registry = MetricsRegistry()
        gate = GateEngine(_engine())
        gate.release.set()
        config = ServeConfig(workers=1, ttl_s=10.0)
        with ServerCore(gate, config, registry=registry,
                        clock=fake) as core:
            first = core.search("apple banana")
            second = core.search("apple banana")   # TTL hit: no dispatch
            assert gate.calls == 1
            assert second.nodes == first.nodes
            fake.advance(11.0)
            third = core.search("apple banana")    # expired: real search
            assert gate.calls == 2
            assert third.nodes == first.nodes
        assert registry.counter("gks_serve_ttl_hits_total").total() == 1
        assert registry.counter("gks_serve_requests_total").value(
            {"outcome": "ttl-hit"}) == 1

    def test_capacity_evicts_oldest(self):
        fake = FakeClock()
        gate = GateEngine(_engine())
        gate.release.set()
        config = ServeConfig(workers=1, ttl_s=100.0, ttl_capacity=2)
        with ServerCore(gate, config, registry=MetricsRegistry(),
                        clock=fake) as core:
            core.search("apple")
            core.search("banana")
            core.search("cherry")   # evicts "apple"
            calls = gate.calls
            core.search("banana")   # still cached
            assert gate.calls == calls
            core.search("apple")    # evicted: searches again
            assert gate.calls == calls + 1

    def test_deadlined_requests_bypass_ttl(self):
        fake = FakeClock()
        gate = GateEngine(_engine())
        gate.release.set()
        config = ServeConfig(workers=1, ttl_s=100.0)
        with ServerCore(gate, config, registry=MetricsRegistry(),
                        clock=fake) as core:
            core.search("apple banana", deadline_s=50.0)
            core.search("apple banana", deadline_s=50.0)
            assert gate.calls == 2  # budgeted: never stored, never hit


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_close_is_idempotent_and_submissions_fail_after(self):
        core = ServerCore(_engine(), registry=MetricsRegistry())
        core.close()
        core.close()
        with pytest.raises(Overloaded):
            core.submit("apple")

    def test_drain_completes_queued_work(self):
        gate = GateEngine(_engine())
        config = ServeConfig(workers=1, queue_capacity=8, coalesce=False)
        core = ServerCore(gate, config, registry=MetricsRegistry())
        first = core.submit("apple")
        assert gate.entered.acquire(timeout=10)
        second = core.submit("banana")
        drained = threading.Event()

        def drain() -> None:
            core.drain()
            drained.set()

        thread = threading.Thread(target=drain, daemon=True)
        thread.start()
        assert not drained.wait(timeout=0.2)  # blocked on queued work
        gate.release.set()
        assert drained.wait(timeout=10)
        assert first.result(timeout=1).nodes is not None
        assert second.result(timeout=1).nodes is not None
        core.close()

    def test_healthz_reflects_drain(self):
        core = ServerCore(_engine(), registry=MetricsRegistry())
        assert core.healthz()["status"] == "ok"
        core.drain()
        assert core.healthz()["status"] == "draining"
        core.close()

    def test_query_errors_raise_synchronously(self):
        with ServerCore(_engine(), registry=MetricsRegistry()) as core:
            with pytest.raises(QueryError):
                core.submit("")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServeConfig(workers=0)
        with pytest.raises(ConfigError):
            ServeConfig(queue_capacity=0)
        with pytest.raises(ConfigError):
            ServeConfig(ttl_s=0.0)
        with pytest.raises(ConfigError):
            ServeConfig(deadline_s=-1.0)
        with pytest.raises(ConfigError):
            ServeConfig().replace(no_such_knob=1)
        assert ServeConfig().replace(workers=2).workers == 2

    def test_engine_serve_hook(self):
        engine = _engine()
        core = engine.serve(workers=2)
        try:
            assert isinstance(core, ServerCore)
            assert core.config.workers == 2
            assert core.engine is engine
        finally:
            core.close()


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------
@pytest.fixture()
def http_server():
    engine = _engine()
    core = ServerCore(engine, ServeConfig(workers=2),
                      registry=MetricsRegistry())
    server = serve_http(core)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}", core
    server.shutdown()
    server.server_close()
    core.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.load(response)


class TestHTTP:
    def test_search_matches_direct_engine(self, http_server):
        base, core = http_server
        status, payload = _get(f"{base}/search?q=apple+banana")
        assert status == 200
        direct = _engine().search("apple banana")
        assert len(payload["nodes"]) == len(direct.nodes)
        assert payload["serve"]["degraded"] is False
        assert payload["query"]["keywords"] == \
            list(direct.query.keywords)

    def test_post_body_search(self, http_server):
        base, _ = http_server
        body = json.dumps({"q": "cherry", "k": 1}).encode()
        request = urllib.request.Request(
            f"{base}/search", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.load(response)
        assert response.status == 200
        assert len(payload["nodes"]) <= 1

    def test_healthz_and_metrics(self, http_server):
        base, _ = http_server
        status, payload = _get(f"{base}/healthz")
        assert status == 200 and payload["status"] == "ok"
        _get(f"{base}/search?q=apple")
        with urllib.request.urlopen(f"{base}/metrics",
                                    timeout=10) as response:
            text = response.read().decode()
        assert "gks_serve_requests_total" in text
        assert 'outcome="ok"' in text

    def test_missing_query_is_400(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as caught:
            _get(f"{base}/search")
        assert caught.value.code == 400

    def test_unknown_route_is_404(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as caught:
            _get(f"{base}/nope")
        assert caught.value.code == 404

    def test_overload_maps_to_429(self):
        engine = _engine()
        gate = GateEngine(engine)
        config = ServeConfig(workers=1, queue_capacity=1, coalesce=False)
        core = ServerCore(gate, config, registry=MetricsRegistry())
        server = serve_http(core)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            results: list = []

            def fetch(query: str) -> None:
                try:
                    results.append(_get(f"{base}/search?q={query}")[0])
                except urllib.error.HTTPError as error:
                    results.append(error.code)

            first = threading.Thread(target=fetch, args=("apple",),
                                     daemon=True)
            first.start()
            assert gate.entered.acquire(timeout=10)  # worker occupied
            second = threading.Thread(target=fetch, args=("banana",),
                                      daemon=True)
            second.start()
            # wait until the second request is queued, then overflow
            deadline = threading.Event()
            for _ in range(100):
                if core.stats()["queued"] >= 1:
                    break
                deadline.wait(0.05)
            assert core.stats()["queued"] >= 1
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{base}/search?q=cherry")
            assert caught.value.code == 429
            assert json.load(caught.value)["reason"] == "queue-full"
            gate.release.set()
            first.join(timeout=10)
            second.join(timeout=10)
            assert results.count(200) == 2
        finally:
            gate.release.set()
            server.shutdown()
            server.server_close()
            core.close()

    def test_server_carries_the_broker(self, http_server):
        _, core = http_server
        server = serve_http(core)
        try:
            assert isinstance(server, ServeHTTPServer)
            assert server.core is core
        finally:
            server.server_close()


# ---------------------------------------------------------------------------
# Load generation
# ---------------------------------------------------------------------------
class TestLoadgen:
    def test_uniform_schedule_spacing(self):
        schedule = OpenLoopSchedule.uniform(10.0, 5, ["a", "b"])
        offsets = [request.at_s for request in schedule.requests]
        assert offsets == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
        queries = [request.query for request in schedule.requests]
        assert queries == ["a", "b", "a", "b", "a"]

    def test_poisson_schedule_is_seed_deterministic(self):
        first = OpenLoopSchedule.poisson(50.0, 20, ["q"], seed=42)
        second = OpenLoopSchedule.poisson(50.0, 20, ["q"], seed=42)
        other = OpenLoopSchedule.poisson(50.0, 20, ["q"], seed=43)
        assert first.requests == second.requests
        assert first.requests != other.requests
        offsets = [request.at_s for request in first.requests]
        assert offsets == sorted(offsets)

    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 95) == 40.0
        assert percentile(values, 0) == 10.0
        assert percentile([], 99) == 0.0

    def test_open_loop_accounts_every_request(self):
        core = ServerCore(_engine(), ServeConfig(workers=2),
                          registry=MetricsRegistry())
        generator = LoadGenerator(core)
        schedule = OpenLoopSchedule.uniform(
            2000.0, 12, ["apple banana", "cherry", "date"])
        try:
            report = generator.run_open(schedule)
        finally:
            core.close()
        assert report.submitted == 12
        assert report.completed + report.shed + report.timeouts \
            + report.errors == 12
        assert report.completed > 0
        stats = report.to_dict()
        assert stats["latency_s"]["p50"] <= stats["latency_s"]["p99"]

    def test_open_loop_sheds_under_overload(self):
        registry = MetricsRegistry()
        gate = GateEngine(_engine())
        gate.release.set()
        config = ServeConfig(workers=1, queue_capacity=1, coalesce=False)
        core = ServerCore(gate, config, registry=registry)
        generator = LoadGenerator(core)
        # 200 near-simultaneous arrivals against one worker and a
        # one-slot queue: most must shed
        schedule = OpenLoopSchedule.uniform(
            1_000_000.0, 200, ["apple banana", "cherry", "banana fig"])
        try:
            report = generator.run_open(schedule)
        finally:
            core.close()
        assert report.shed > 0
        assert report.completed >= 1
        shed_metric = registry.counter("gks_serve_shed_total").total()
        assert shed_metric == report.shed

    def test_closed_loop_totals(self):
        core = ServerCore(_engine(), ServeConfig(workers=2),
                          registry=MetricsRegistry())
        generator = LoadGenerator(core)
        try:
            report = generator.run_closed(
                ["apple banana", "cherry"], concurrency=3, iterations=4)
        finally:
            core.close()
        assert report.submitted == 12
        assert report.completed == 12
        assert report.mode == "closed"
        assert report.throughput_rps > 0

    def test_bursty_arrivals_deterministic(self):
        first = BurstyArrivals(bursts=3, burst_size=4, gap_s=0.1,
                               jitter_s=0.01, seed=5).offsets()
        second = BurstyArrivals(bursts=3, burst_size=4, gap_s=0.1,
                                jitter_s=0.01, seed=5).offsets()
        assert first == second
        assert len(first) == 12
        assert first == sorted(first)

    def test_bursty_arrivals_drive_a_schedule(self):
        offsets = BurstyArrivals(bursts=2, burst_size=3,
                                 gap_s=0.05).offsets()
        from repro.serve import LoadRequest

        schedule = OpenLoopSchedule(tuple(
            LoadRequest(at_s=offset, query="apple banana")
            for offset in offsets))
        assert schedule.duration_s == pytest.approx(offsets[-1])
        assert len(schedule.requests) == 6
