#!/usr/bin/env bash
# Durability smoke test: boot `gks serve` over a segmented store, POST
# documents under concurrent search traffic, then SIGKILL the server
# mid-stream (no drain, no warning) and restart it on the same store.
# Every acknowledged document must survive the crash, the recovered
# server must answer queries over it, and `check-index --deep` must find
# the store clean.  Finish with a SIGTERM and require a clean drain.
#
# Usage:  bash scripts/smoke_durability.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
STORE="$WORKDIR/store"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

boot_server() {
    local log="$1"
    python -m repro serve "$WORKDIR"/figure2a_0.xml \
        --port 0 --serve-workers 2 \
        --store "$STORE" --memtable-docs 3 --compact-segments 2 \
        >"$log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        grep -q "listening on" "$log" 2>/dev/null && break
        sleep 0.1
    done
    grep -q "listening on" "$log" || {
        echo "FAIL: server never reported its address" >&2
        cat "$log" >&2; exit 1; }
    PORT="$(sed -n 's#.*http://[^:]*:\([0-9]*\).*#\1#p' "$log")"
    BASE="http://127.0.0.1:$PORT"
}

echo "== generate toy corpus =="
python -m repro dataset figure2a -o "$WORKDIR"

echo "== boot gks serve over a fresh segmented store =="
boot_server "$WORKDIR/serve1.log"
echo "serving on $BASE (store: $STORE)"
curl -fsS "$BASE/healthz"
echo

echo "== POST documents while searches run =="
SEARCH_PIDS=()
for n in 1 2 3 4; do
    curl -fsS "$BASE/search?q=karen+mike" >/dev/null &
    SEARCH_PIDS+=("$!")
done
POSTED=7
for n in $(seq 1 "$POSTED"); do
    curl -fsS -X POST "$BASE/documents" \
        -H 'Content-Type: application/json' \
        -d "{\"text\": \"<dblp><article><title>durable paper $n</title><author>smoketest</author></article></dblp>\", \"name\": \"smoke$n.xml\"}" \
        >"$WORKDIR/post.$n"
done
wait "${SEARCH_PIDS[@]}"
for n in $(seq 1 "$POSTED"); do
    grep -q '"durable": true' "$WORKDIR/post.$n" || {
        echo "FAIL: POST $n was not acknowledged as durable" >&2
        cat "$WORKDIR/post.$n" >&2; exit 1; }
done
curl -fsS -X POST "$BASE/admin/flush" >/dev/null
echo "posted $POSTED documents (memtable 3 -> flushes + compactions ran)"

echo "== SIGKILL mid-stream: no drain, no fsync beyond the WAL =="
# keep mutations in flight so the kill lands mid-activity
curl -fsS -X POST "$BASE/documents" \
    -H 'Content-Type: application/json' \
    -d '{"text": "<dblp><article><title>post-flush straggler</title></article></dblp>", "name": "straggler.xml"}' \
    >"$WORKDIR/post.straggler"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q '"durable": true' "$WORKDIR/post.straggler" || {
    echo "FAIL: straggler POST was not acknowledged" >&2; exit 1; }

echo "== restart on the same store: recovery must be lossless =="
boot_server "$WORKDIR/serve2.log"
echo "recovered server on $BASE"
curl -fsS "$BASE/search?q=smoketest" >"$WORKDIR/recovered.json"
grep -q '"nodes"' "$WORKDIR/recovered.json" || {
    echo "FAIL: recovered server returned no nodes payload" >&2; exit 1; }
python - "$WORKDIR/recovered.json" "$POSTED" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
posted = int(sys.argv[2])
nodes = payload["nodes"]
assert len(nodes) >= posted, \
    f"expected >= {posted} hits for acknowledged documents, got {len(nodes)}"
print(f"recovered search: {len(nodes)} hit(s) over acknowledged documents")
EOF
curl -fsS "$BASE/search?q=straggler" >"$WORKDIR/straggler.json"
python - "$WORKDIR/straggler.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["nodes"], "WAL-tail document lost after SIGKILL"
print("WAL-tail straggler survived the crash")
EOF

echo "== SIGTERM drains cleanly =="
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || {
    echo "FAIL: recovered server exited with status $STATUS" >&2
    cat "$WORKDIR/serve2.log" >&2; exit 1; }

echo "== check-index --deep on the crashed-and-recovered store =="
python -m repro check-index "$STORE" --deep

echo "smoke_durability OK"
