"""Shared fixtures: the paper's toy documents, indexed and ready."""

from __future__ import annotations

import pytest

from repro.core.engine import GKSEngine
from repro.datasets.toy import figure1, figure2a
from repro.index.builder import build_index
from repro.xmltree.repository import Repository


@pytest.fixture(scope="session")
def figure1_repo() -> Repository:
    repository = Repository()
    repository.add_root(figure1())
    return repository


@pytest.fixture(scope="session")
def figure1_index(figure1_repo):
    return build_index(figure1_repo)


@pytest.fixture(scope="session")
def figure1_engine(figure1_repo) -> GKSEngine:
    return GKSEngine(figure1_repo)


@pytest.fixture(scope="session")
def figure2a_repo() -> Repository:
    repository = Repository()
    repository.add_root(figure2a())
    return repository


@pytest.fixture(scope="session")
def figure2a_index(figure2a_repo):
    return build_index(figure2a_repo)


@pytest.fixture(scope="session")
def figure2a_engine(figure2a_repo) -> GKSEngine:
    return GKSEngine(figure2a_repo)


# Dewey ids of the Figure 1 nodes, for readable assertions.
FIG1 = {
    "r": (0,),
    "x1": (0, 0),
    "x2": (0, 0, 3),
    "x3": (0, 1),
    "y": (0, 1, 2),
    "x4": (0, 2),
}


@pytest.fixture(scope="session")
def fig1_ids() -> dict:
    return dict(FIG1)
