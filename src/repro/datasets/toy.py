"""The paper's two worked-example documents.

* :func:`figure1` — the abstract labeled tree of Fig. 1 behind Table 1
  (queries Q1–Q3) and Example 5's rank computation.  The published figure
  is ambiguous about where ``x4`` hangs; this layout is the unique one we
  found that reproduces *every* reported result simultaneously:

  - GKS(Q1, s=3) = {x2};  SLCA(Q1) = {x2};  ELCA(Q1) = {x1, x2}
  - GKS(Q2, s=2) = {x2, x3};  SLCA = ELCA = ∅
  - GKS(Q3, s=2) = {x2, x3, x4} with ranks 3, 2.5, 2;  SLCA = ELCA = {r}

* :func:`figure2a` — the university document of Fig. 2(a) behind the node
  categorization examples, Table 3's postings, Example 3 (query Q4) and
  the DI discussion (Q5 → "Data Mining").
"""

from __future__ import annotations

from repro.xmltree.node import XMLNode, build_tree


def figure1() -> XMLNode:
    """The Fig. 1 toy tree; keywords a–d are both tags and text values."""
    return build_tree(("r", [
        ("x1", [
            ("a", "a"),
            ("b", "b"),
            ("c", "c"),
            ("x2", [("a", "a"), ("b", "b"), ("c", "c")]),
        ]),
        ("x3", [
            ("a", "a"),
            ("b", "b"),
            ("y", [("d", "d"), ("f", "f")]),
        ]),
        ("x4", [("a", "a"), ("d", "d")]),
    ]))


def figure2a() -> XMLNode:
    """The Fig. 2(a) university document (Dept → Area → Course →
    Student)."""
    return build_tree(("Dept", [
        ("Dept_Name", "CS"),
        ("Area", [
            ("Name", "Databases"),
            ("Courses", [
                ("Course", [
                    ("Name", "Data Mining"),
                    ("Students", [
                        ("Student", "Karen"),
                        ("Student", "Mike"),
                        ("Student", "John"),
                    ]),
                ]),
                ("Course", [
                    ("Name", "Algorithms"),
                    ("Students", [
                        ("Student", "Karen"),
                        ("Student", "Julie"),
                    ]),
                ]),
                ("Course", [
                    ("Name", "AI"),
                    ("Students", [
                        ("Student", "Karen"),
                        ("Student", "Mike"),
                        ("Student", "Serena"),
                        ("Student", "Peter"),
                    ]),
                ]),
            ]),
        ]),
        ("Area", [
            ("Name", "Systems"),
            ("Courses", [
                ("Course", [
                    ("Name", "Operating Systems"),
                    ("Students", [
                        ("Student", "Harry"),
                        ("Student", "Zoe"),
                    ]),
                ]),
                ("Course", [
                    ("Name", "Networks"),
                    ("Students", [
                        ("Student", "Mike"),
                        ("Student", "Ann"),
                    ]),
                ]),
            ]),
        ]),
    ]))
