"""Experiment runners shared by the benchmark suite.

Each paper experiment (DESIGN.md §3) has a function here that computes its
rows/series; the ``benchmarks/`` modules wrap them in pytest-benchmark
timers and print the rendered tables.  Keeping the logic importable means
tests can assert on experiment *content* without paying benchmark runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.baselines.slca import slca_indexed_lookup_eager
from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.datasets.dblp import generate_dblp
from repro.datasets.registry import load_dataset
from repro.datasets.sigmod import generate_sigmod
from repro.eval.feedback import (FeedbackTable, QueryComparison,
                                 simulate_feedback)
from repro.eval.metrics import response_rank_score
from repro.eval.workload import TABLE6, HYBRID_QUERY, WorkloadQuery
from repro.index.builder import GKSIndex
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository


@lru_cache(maxsize=None)
def engine_for(dataset: str, scale: int = 1, seed: int = 0) -> GKSEngine:
    """A cached, fully indexed engine per (dataset, scale, seed)."""
    return GKSEngine(load_dataset(dataset, scale=scale, seed=seed))


# ----------------------------------------------------------------------
# Tables 6+7: result counts and ranking quality
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualityRow:
    qid: str
    gks_s1: int
    gks_half: int
    slca: int
    max_keywords: int
    rank_score: float


def table7_rows(scale: int = 1, seed: int = 0) -> list[QualityRow]:
    """One row per Table 6 query: Table 7's columns on synthetic data."""
    rows = []
    for workload in TABLE6:
        engine = engine_for(workload.dataset, scale, seed)
        response_s1 = engine.search(workload.text, s=1)
        response_half = engine.search(workload.text, s=workload.half_s())
        query_all = engine.parse_query(workload.text,
                                       s=len(workload.text))
        slca_nodes = slca_indexed_lookup_eager(engine.index, query_all)
        rows.append(QualityRow(
            qid=workload.qid,
            gks_s1=len(response_s1),
            gks_half=len(response_half),
            slca=len(slca_nodes),
            max_keywords=response_s1.max_distinct_keywords(),
            rank_score=response_rank_score(response_s1)))
    return rows


# ----------------------------------------------------------------------
# Table 8: DI per query
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DIRow:
    qid: str
    di_s1: tuple[str, ...]
    di_half: tuple[str, ...]


def table8_rows(scale: int = 1, seed: int = 0, top: int = 2) -> list[DIRow]:
    rows = []
    for workload in TABLE6:
        engine = engine_for(workload.dataset, scale, seed)
        rows.append(DIRow(
            qid=workload.qid,
            di_s1=_top_di(engine, workload, s=1, top=top),
            di_half=_top_di(engine, workload, s=workload.half_s(),
                            top=top)))
    return rows


def _top_di(engine: GKSEngine, workload: WorkloadQuery, s: int,
            top: int) -> tuple[str, ...]:
    response = engine.search(workload.text, s=s)
    report = engine.insights(response, top=top)
    return tuple(insight.render() for insight in report)


# ----------------------------------------------------------------------
# §7.4 refinement case study (QD1 + DI co-author)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RefinementCase:
    original_results: int
    di_coauthor_found: bool
    refined_results: int
    refined_text: str


def refinement_case(scale: int = 1, seed: int = 0) -> RefinementCase:
    """QD1 → DI exposes Rusinkiewicz → refined query finds 10 articles."""
    engine = engine_for("dblp", scale, seed)
    qd1 = '"Dimitrios Georgakopoulos" "Joe D. Morrison"'
    response = engine.search(qd1, s=1)
    report = engine.insights(response, top=10)
    rendered = " ".join(insight.render().lower() for insight in report)
    found = "rusinkiewicz" in rendered

    refined_query = engine.parse_query(
        '"Dimitrios Georgakopoulos" "Marek Rusinkiewicz"')
    full = engine.search(refined_query.with_s(len(refined_query)))
    return RefinementCase(original_results=len(response),
                          di_coauthor_found=found,
                          refined_results=len(full),
                          refined_text="Georgakopoulos + Rusinkiewicz")


# ----------------------------------------------------------------------
# Figures 8/9: response time vs |SL| and vs n
# ----------------------------------------------------------------------
def frequency_ladder(index: GKSIndex, count: int,
                     minimum_df: int = 2) -> list[str]:
    """Vocabulary sorted by document frequency (most frequent first)."""
    frequencies = sorted(
        ((index.inverted.document_frequency(keyword), keyword)
         for keyword in index.inverted.vocabulary
         if index.inverted.document_frequency(keyword) >= minimum_df),
        reverse=True)
    return [keyword for _, keyword in frequencies[:count]]


def queries_for_figure8(index: GKSIndex, n: int = 8,
                        buckets: int = 6) -> list[Query]:
    """Fixed-``n`` queries whose merged-list sizes span a wide range.

    Bucket *b* draws its keywords from a progressively rarer region of the
    frequency ladder, so |SL| falls across queries, as in Fig. 8.
    """
    ladder = frequency_ladder(index, count=max(4 * n * buckets, 64))
    queries = []
    for bucket in range(buckets):
        start = bucket * len(ladder) // buckets
        chunk = ladder[start:start + n]
        if len(chunk) == n:
            queries.append(Query.of(chunk, s=max(1, n // 2)))
    return queries


def timed_search(engine: GKSEngine, query: Query,
                 repeats: int = 3) -> tuple[float, int]:
    """Best-of-*repeats* pipeline time (seconds) and merged-list size.

    Bypasses the engine's response cache — every repeat pays full cost.
    Timings come from the :class:`~repro.obs.stats.QueryStats` record on
    each response (the pipeline's own instrument), not from re-timing
    around the call.
    """
    best = float("inf")
    sl_size = 0
    for _ in range(repeats):
        response = engine.search(query, use_cache=False)
        best = min(best, response.stats.total_seconds)
        sl_size = response.stats.postings_scanned
    return best, sl_size


def figure8_series(dataset: str, scale: int = 1, seed: int = 0,
                   n: int = 8) -> list[tuple[int, float]]:
    """(|SL|, response-time ms) points, sorted by |SL|."""
    engine = engine_for(dataset, scale, seed)
    points = []
    for query in queries_for_figure8(engine.index, n=n):
        seconds, sl_size = timed_search(engine, query)
        points.append((sl_size, seconds * 1000.0))
    points.sort()
    return points


def figure9_series(dataset: str, scale: int = 1, seed: int = 0,
                   sizes: tuple[int, ...] = (2, 4, 8, 16)
                   ) -> list[tuple[int, float]]:
    """(n, response-time ms) for growing query sizes (Fig. 9)."""
    engine = engine_for(dataset, scale, seed)
    ladder = frequency_ladder(engine.index, count=max(sizes) * 4)
    points = []
    for n in sizes:
        keywords = ladder[:n]
        if len(keywords) < n:
            break
        query = Query.of(keywords, s=max(1, n // 2))
        seconds, _ = timed_search(engine, query)
        points.append((n, seconds * 1000.0))
    return points


# ----------------------------------------------------------------------
# Figure 10: scalability via replication
# ----------------------------------------------------------------------
def figure10_series(dataset: str = "swissprot", factors: tuple[int, ...] =
                    (1, 2, 3), scale: int = 1, seed: int = 0,
                    n: int = 6) -> list[tuple[int, float, int]]:
    """(factor, response-time ms, |SL|) for replicated corpora."""
    base = load_dataset(dataset, scale=scale, seed=seed)
    points = []
    query_keywords: list[str] | None = None
    for factor in factors:
        replicated = base.extend_replicated(factor)
        engine = GKSEngine(replicated)
        if query_keywords is None:
            query_keywords = frequency_ladder(engine.index, count=n)
        query = Query.of(query_keywords, s=max(1, n // 2))
        seconds, sl_size = timed_search(engine, query)
        points.append((factor, seconds * 1000.0, sl_size))
    return points


# ----------------------------------------------------------------------
# §7.5 simulated feedback
# ----------------------------------------------------------------------
def feedback_table(scale: int = 1, seed: int = 0,
                   users: int = 40) -> FeedbackTable:
    comparisons = []
    for workload in TABLE6[:12]:  # the paper's §7.5 table covers QS/QD/QM
        engine = engine_for(workload.dataset, scale, seed)
        response = engine.search(workload.text, s=1)
        query_all = engine.parse_query(workload.text, s=10 ** 6)
        slca_nodes = slca_indexed_lookup_eager(engine.index, query_all)
        comparisons.append(QueryComparison.from_results(
            workload.qid, response, slca_nodes))
    return simulate_feedback(comparisons, users=users, seed=seed + 7)


# ----------------------------------------------------------------------
# §7.6 hybrid queries
# ----------------------------------------------------------------------
def build_hybrid_repository(scale: int = 1, seed: int = 0) -> Repository:
    """DBLP and SIGMOD Record under one common root, with the SIGMOD side
    pushed two connecting nodes deeper (the paper's §7.6 setup)."""
    root = XMLNode("collection", (0,))
    _graft(root, generate_dblp(scale=scale, seed=seed))
    wrapper = root.add_child("archive")
    inner = wrapper.add_child("records")
    _graft(inner, generate_sigmod(scale=scale, seed=seed))
    repository = Repository()
    repository.add_root(root)
    return repository


def _graft(parent: XMLNode, source: XMLNode) -> None:
    """Deep-copy *source* (with fresh Dewey ids) under *parent*."""
    copy = parent.add_child(source.tag, text=source.text,
                            xml_attributes=dict(source.xml_attributes))
    stack = [(source, copy)]
    while stack:
        old, new = stack.pop()
        for child in old.children:
            replica = new.add_child(child.tag, text=child.text,
                                    xml_attributes=dict(
                                        child.xml_attributes))
            stack.append((child, replica))


@dataclass(frozen=True)
class HybridOutcome:
    total_results: int
    dblp_hits: int          # <inproceedings> by Meynadier & Behm
    sigmod_hits: int        # <article> by Rowe & Stonebraker
    sigmod_ranked_first: bool


def hybrid_experiment(scale: int = 1, seed: int = 0) -> HybridOutcome:
    repository = build_hybrid_repository(scale=scale, seed=seed)
    engine = GKSEngine(repository)
    response = engine.search(HYBRID_QUERY, s=2)

    dblp_hits = 0
    sigmod_hits = 0
    kinds: list[str] = []
    for node in response:
        element = repository.node_at(node.dewey)
        tag = element.tag if element is not None else "?"
        kinds.append(tag)
        pair_text = element.subtree_text() if element is not None else ""
        if tag == "inproceedings" and "Meynadier" in pair_text \
                and "Behm" in pair_text:
            dblp_hits += 1
        elif tag == "article" and "Rowe" in pair_text \
                and "Stonebraker" in pair_text:
            sigmod_hits += 1
    return HybridOutcome(total_results=len(response),
                         dblp_hits=dblp_hits, sigmod_hits=sigmod_hits,
                         sigmod_ranked_first=bool(kinds)
                         and kinds[0] == "article")
