"""SLCA baselines — Xu & Papakonstantinou [13] (paper refs [2][13]).

A node is a *Smallest LCA* for query ``Q`` when its subtree contains every
query keyword and no node in its subtree also does.  Two algorithms are
provided:

* :func:`slca_indexed_lookup_eager` — the Indexed Lookup Eager algorithm:
  walk the shortest posting list; for each anchor compute the deepest node
  containing the anchor and a closest posting from every other list
  (O(n·|Smin|·log|Smax|) Dewey operations, the complexity the paper quotes
  in §4.2); then prune ancestors.
* :func:`slca_scan` — a merge-scan variant used as a second opinion: sweep
  the merged list with a last-seen-position table.

Both are cross-validated against the brute-force oracle in the test suite.
"""

from __future__ import annotations

from repro.baselines.lca import (match_lca, posting_lists, remove_ancestors)
from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey, common_prefix


def slca_indexed_lookup_eager(index: GKSIndex, query: Query) -> list[Dewey]:
    """SLCA nodes via Indexed Lookup Eager, in document order."""
    lists = posting_lists(index, query)
    if any(not postings for postings in lists):
        return []
    if len(lists) == 1:
        return remove_ancestors(list(lists[0]))

    shortest = min(lists, key=len)
    others = [postings for postings in lists if postings is not shortest]
    candidates: list[Dewey] = []
    for anchor in shortest:
        lca = match_lca(anchor, others)
        if lca:
            candidates.append(lca)
    return remove_ancestors(candidates)


def slca_scan(index: GKSIndex, query: Query) -> list[Dewey]:
    """SLCA nodes via a single sweep of the merged occurrence stream.

    Maintains the most recent posting per keyword; whenever all keywords
    have been seen, the deepest common ancestor of the current window is a
    candidate.  Ancestor removal at the end yields the SLCAs.
    """
    lists = posting_lists(index, query)
    if any(not postings for postings in lists):
        return []
    from repro.index.postings import merge_posting_lists

    last_seen: dict[int, Dewey] = {}
    candidates: list[Dewey] = []
    for entry in merge_posting_lists(lists):
        last_seen[entry.keyword] = entry.dewey
        if len(last_seen) == len(lists):
            lca: Dewey | None = None
            for dewey in last_seen.values():
                lca = dewey if lca is None else common_prefix(lca, dewey)
            if lca:
                candidates.append(lca)
    return remove_ancestors(candidates)


def is_slca(index: GKSIndex, query: Query, dewey: Dewey) -> bool:
    """Membership test used by tests: *dewey* contains all keywords and no
    descendant posting pattern does (checked via the eager algorithm)."""
    return any(dewey == result
               for result in slca_indexed_lookup_eager(index, query))


def contains_all_keywords(index: GKSIndex, query: Query,
                          dewey: Dewey) -> bool:
    """True when every query keyword occurs in ``subtree(dewey)``."""
    from repro.index.postings import subtree_range

    for keyword in query.keywords:
        postings = index.postings(keyword)
        lo, hi = subtree_range(postings, dewey)
        if lo == hi:
            return False
    return True
