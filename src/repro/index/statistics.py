"""Index statistics backing the paper's Table 4 and Table 5.

Table 4 reports index size and preparation time per corpus; Table 5 reports
how many elements fall into each node category (AN/EN/RN/CN).  The builder
fills an :class:`IndexStats` as it streams over the data, so producing the
tables costs nothing extra.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.categorize import CategoryRecord, NodeCategory


@dataclass
class IndexStats:
    """Running counters collected while building an index."""

    documents: int = 0
    total_nodes: int = 0
    attribute_nodes: int = 0
    entity_nodes: int = 0
    repeating_nodes: int = 0
    connecting_nodes: int = 0
    text_keywords: int = 0
    tag_keywords: int = 0
    max_depth: int = 0
    build_seconds: float = 0.0
    category_by_tag: dict[str, str] = field(default_factory=dict)

    def record_category(self, record: CategoryRecord) -> None:
        """Count one categorized element.

        Elements that are both entity and repeating count as entity nodes
        for the primary-category histogram *and* as repeating nodes —
        matching Table 5, whose four counts sum to more than the "Total
        Nodes" column would otherwise allow for some corpora (the paper
        files dual-role nodes in both hash tables, §2.4).
        """
        self.total_nodes += 1
        if record.category is NodeCategory.ATTRIBUTE:
            self.attribute_nodes += 1
        elif record.category is NodeCategory.ENTITY:
            self.entity_nodes += 1
        elif record.category is NodeCategory.REPEATING:
            self.repeating_nodes += 1
        else:
            self.connecting_nodes += 1
        if record.is_repeating and record.category is NodeCategory.ENTITY:
            self.repeating_nodes += 1
        depth = len(record.dewey) - 1
        if depth > self.max_depth:
            self.max_depth = depth
        self.category_by_tag.setdefault(record.tag, record.category.value)

    # ------------------------------------------------------------------
    def category_row(self) -> dict[str, int]:
        """One Table 5 row: AN/EN/RN/CN counts plus the total."""
        return {
            "AN": self.attribute_nodes,
            "EN": self.entity_nodes,
            "RN": self.repeating_nodes,
            "CN": self.connecting_nodes,
            "total": self.total_nodes,
        }

    @property
    def total_keywords(self) -> int:
        return self.text_keywords + self.tag_keywords

    def to_dict(self) -> dict:
        """JSON-ready form for persistence."""
        return {
            "documents": self.documents,
            "total_nodes": self.total_nodes,
            "attribute_nodes": self.attribute_nodes,
            "entity_nodes": self.entity_nodes,
            "repeating_nodes": self.repeating_nodes,
            "connecting_nodes": self.connecting_nodes,
            "text_keywords": self.text_keywords,
            "tag_keywords": self.tag_keywords,
            "max_depth": self.max_depth,
            "build_seconds": self.build_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IndexStats":
        stats = cls()
        for key, value in data.items():
            if hasattr(stats, key):
                setattr(stats, key, value)
        return stats
