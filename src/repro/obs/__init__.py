"""``repro.obs`` — the zero-dependency observability subsystem.

Four instruments, one package:

* :mod:`repro.obs.trace` — nested wall-time spans with counters and
  attributes (:class:`Tracer`), plus a shared no-op tracer
  (:data:`NOOP_TRACER`) so the untraced hot path pays ~nothing;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and bucketed histograms with JSON and Prometheus-text
  exposition;
* :mod:`repro.obs.stats` — the per-query :class:`QueryStats` record
  attached to every :class:`~repro.core.results.GKSResponse`, and the
  :class:`SlowQueryLog` ring buffer behind ``gks stats``;
* :mod:`repro.obs.locks` — injectable instrumented locks
  (:func:`new_lock`/:func:`new_rlock` + :class:`LockMonitor`) recording
  per-thread acquisition stacks into a lock-order graph with
  potential-deadlock cycle detection; raw stdlib locks (zero cost)
  when no monitor is installed.

Every clock in the package is injectable (compose with
:class:`repro.testing.faults.FakeClock`), so duration assertions are
deterministic and never sleep.
"""

from repro.obs.locks import (DeadlockReport, InstrumentedLock, LockMonitor,
                             OrderEdge, install_monitor, monitoring,
                             new_lock, new_rlock, uninstall_monitor)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               global_registry)
from repro.obs.stats import QueryStats, SlowQuery, SlowQueryLog
from repro.obs.trace import NOOP_TRACER, Span, Tracer, render_span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "QueryStats",
    "SlowQuery",
    "SlowQueryLog",
    "NOOP_TRACER",
    "Span",
    "Tracer",
    "render_span_tree",
    "DeadlockReport",
    "InstrumentedLock",
    "LockMonitor",
    "OrderEdge",
    "install_monitor",
    "uninstall_monitor",
    "monitoring",
    "new_lock",
    "new_rlock",
]
