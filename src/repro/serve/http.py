"""Thin JSON-over-HTTP front end over :class:`ServerCore`.

Standard library only: :class:`http.server.ThreadingHTTPServer` gives
one handler thread per connection; every handler immediately delegates
to the shared :class:`~repro.serve.core.ServerCore`, so concurrency,
admission and coalescing semantics live in one place regardless of
transport.

Routes
------
``GET /search?q=...&s=...&k=...&deadline_ms=...``
    Run a keyword query; also accepts ``POST /search`` with the same
    fields as a JSON body.  A JSON body may also carry an ``options``
    object — the wire form of
    :class:`~repro.core.config.SearchOptions` (``s``, ``k``,
    ``use_cache``, ``strict_deadline``, ``deadline_ms``); explicit
    top-level parameters win over its fields.  Responds with the
    :func:`repro.core.export.response_to_dict` payload plus a ``serve``
    envelope (degradation report, cache/coalesce provenance).
``POST /documents``
    Append one XML document (JSON body ``{"text": "<xml...>",
    "name"?: ...}``) through the broker; on a durable engine the write
    is WAL'd and crash-safe before the 200 returns.
``POST /admin/flush`` / ``POST /admin/compact``
    Flush the memtable to an immutable segment / compact multi-run
    shards (durable engines only; 500 ``StorageError`` otherwise).
``GET /healthz``
    Liveness + drain state.
``GET /metrics``
    The metrics registry in Prometheus text exposition format.

Error mapping: client errors (bad query, bad parameters, a query mode
the serving engine was not configured for) are 400;
:class:`~repro.errors.Overloaded` is 429 with a ``Retry-After`` header
when the broker can suggest one; :class:`~repro.errors.SearchTimeout`
is 504; any other :class:`~repro.errors.GKSError` is 500.  Bodies are
always JSON: ``{"error": ..., "type": ..., "reason"?: ...}``.

Correlation: every ``/search`` exchange — success *or* error — answers
with an ``X-Request-Id`` header (the client's own when it sent one,
otherwise minted at admission).  The same id is stamped on the
response's :class:`~repro.obs.stats.QueryStats`, the slow-query log
entry and the search's span tree, so one grep joins all four.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.core.config import SearchOptions
from repro.core.export import response_to_dict
from repro.errors import (ConfigError, GKSError, Overloaded, QueryError,
                          SearchTimeout, ValidationError, XMLSyntaxError)
from repro.serve.core import ServerCore


class ServeHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the shared broker."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], core: ServerCore) -> None:
        self.core = core
        super().__init__(address, GKSRequestHandler)


class GKSRequestHandler(BaseHTTPRequestHandler):
    # quiet by default: one log line per request on stderr does not
    # belong in a library; front ends scrape /metrics instead
    def log_message(self, format: str, *args) -> None:
        pass

    @property
    def core(self) -> ServerCore:
        return self.server.core  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def _send_json(self, status: int, payload: dict,
                   headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: Exception,
                         headers: dict[str, str] | None = None) -> None:
        payload = {"error": str(exc), "type": type(exc).__name__}
        if isinstance(exc, Overloaded):
            payload["reason"] = exc.reason
        self._send_json(status, payload, headers=headers)

    def _params(self) -> dict:
        """Merged query-string + JSON-body parameters."""
        split = urlsplit(self.path)
        params = {name: values[-1]
                  for name, values in parse_qs(split.query).items()}
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            raw = self.rfile.read(length)
            body = json.loads(raw.decode("utf-8"))
            if not isinstance(body, dict):
                raise ValidationError("request body must be a JSON object")
            params.update(body)
        return params

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:
        route = urlsplit(self.path).path
        if route == "/healthz":
            payload = self.core.healthz()
            status = 200 if payload["status"] == "ok" else 503
            self._send_json(status, payload)
        elif route == "/metrics":
            text = self.core.registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(text)))
            self.end_headers()
            self.wfile.write(text)
        elif route == "/search":
            self._search()
        else:
            self._send_json(404, {"error": f"no route {route!r}",
                                  "type": "NotFound"})

    def do_POST(self) -> None:
        route = urlsplit(self.path).path
        if route == "/search":
            self._search()
        elif route == "/documents":
            self._add_document()
        elif route == "/admin/flush":
            self._admin("flush")
        elif route == "/admin/compact":
            self._admin("compact")
        else:
            self._send_json(404, {"error": f"no route {route!r}",
                                  "type": "NotFound"})

    def _search(self) -> None:
        # the correlation id is minted (or taken from the client) before
        # admission so even a shed or parse error answers with one
        rid = self.headers.get("X-Request-Id") or \
            self.core.mint_request_id()
        rid_header = {"X-Request-Id": rid}
        try:
            params = self._params()
            raw = params.get("q") or params.get("query")
            if not raw:
                raise ValidationError("missing required parameter 'q'")
            s = int(params["s"]) if "s" in params else None
            k = int(params["k"]) if "k" in params else None
            deadline_s = (float(params["deadline_ms"]) / 1000.0
                          if "deadline_ms" in params else None)
            # the shared tuning record: ``{"options": {...}}`` in the
            # body (or a JSON object in the query string); explicit
            # top-level parameters win over its fields
            options = None
            raw_options = None
            if "options" in params:
                raw_options = params["options"]
                if isinstance(raw_options, str):
                    raw_options = json.loads(raw_options)
            # top-level mode/threshold are shorthand for options fields
            extra = {key: params[key] for key in ("mode", "threshold")
                     if key in params}
            if extra:
                raw_options = {**(raw_options or {}), **extra}
            if raw_options is not None:
                options = SearchOptions.from_mapping(raw_options)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_error_json(400, exc, headers=rid_header)
            return
        try:
            response = self.core.search(raw, s, k=k, deadline_s=deadline_s,
                                        options=options, request_id=rid)
        except Overloaded as exc:
            headers = dict(rid_header)
            if exc.retry_after_s is not None:
                headers["Retry-After"] = f"{exc.retry_after_s:.3f}"
            self._send_error_json(429, exc, headers=headers)
            return
        except SearchTimeout as exc:
            self._send_error_json(504, exc, headers=rid_header)
            return
        except GKSError as exc:
            # bad queries and mode-capability mismatches (asking a
            # strict server for probabilistic results) are the
            # client's fault; the rest are ours
            status = 400 if isinstance(
                exc, (QueryError, ValidationError, ConfigError)) else 500
            self._send_error_json(status, exc, headers=rid_header)
            return
        payload = response_to_dict(response,
                                   repository=self.core.engine.repository)
        payload["serve"] = _serve_envelope(response)
        # coalesced followers share the leader's stamped id; the header
        # still reports the id minted for *this* HTTP exchange
        self._send_json(200, payload, headers=rid_header)

    def _add_document(self) -> None:
        try:
            params = self._params()
            text = params.get("text") or params.get("xml")
            if not text:
                raise ValidationError("missing required parameter 'text'")
            name = params.get("name")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_error_json(400, exc)
            return
        try:
            info = self.core.add_document(text, name=name)
        except Overloaded as exc:
            headers = {}
            if exc.retry_after_s is not None:
                headers["Retry-After"] = f"{exc.retry_after_s:.3f}"
            self._send_error_json(429, exc, headers=headers)
            return
        except GKSError as exc:
            # malformed XML is the client's fault; storage failures ours
            status = 400 if isinstance(
                exc, (XMLSyntaxError, ValidationError)) else 500
            self._send_error_json(status, exc)
            return
        self._send_json(200, info)

    def _admin(self, action: str) -> None:
        try:
            info = (self.core.flush() if action == "flush"
                    else self.core.compact())
        except GKSError as exc:
            self._send_error_json(500, exc)
            return
        self._send_json(200, info)


def _serve_envelope(response) -> dict:
    envelope: dict = {
        "degraded": response.degraded,
        "cache_hit": response.stats.cache_hit,
        "request_id": response.stats.request_id,
    }
    if response.degradation is not None:
        report = response.degradation
        envelope["degradation"] = {
            "stage": report.stage,
            "reason": report.reason,
            "processed": report.processed,
            "total": report.total,
            "elapsed_s": report.elapsed_s,
            "remaining_s": report.remaining_s,
        }
    return envelope


def serve_http(core: ServerCore, host: str = "127.0.0.1",
               port: int = 0) -> ServeHTTPServer:
    """Bind a :class:`ServeHTTPServer`; port 0 picks an ephemeral one.

    Returns the bound (not yet serving) server — call
    ``server.serve_forever()`` (the CLI does) or drive it from a thread
    in tests.  The chosen port is ``server.server_address[1]``.
    """
    return ServeHTTPServer((host, port), core)
