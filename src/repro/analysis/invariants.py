"""Deep data-level invariant verification for built and saved indexes.

A checksum proves a file holds the bytes that were written; it cannot
prove the bytes were *right*.  This module audits the semantic
invariants every GKS correctness argument rests on — the structural
guarantees that make merge/LCP/LCE binary searches, scatter-gather
equivalence and ranking potential-flow sound:

``postings-sorted``
    Every posting list is strictly ascending in Dewey order (strictness
    also rules out duplicates) — the precondition of every binary
    search and k-way merge in the pipeline.
``postings-document``
    Every posting's leading Dewey component names a known document.
``hash-cross-consistency``
    A node present in both ``entityHash`` and ``elementHash`` (a
    dual-role entity+repeating node) carries the same direct-child
    count in both; no child count is negative; every entity node's
    parent is itself indexed.
``stats-agreement``
    ``stats.documents`` matches the recorded document names;
    ``stats.entity_nodes`` matches the entity table; distinct postings
    never exceed the keyword occurrences counted at build time.
``shard-partition``
    The shard manifest partitions the document set exactly once — no
    document unassigned, none assigned twice (an unassigned document
    silently vanishes from every query; a doubly-assigned one is
    double-counted by scatter-gather).
``shard-routing``
    Each document lives on the shard its partitioning strategy names.
``shard-ownership``
    Every posting and hash key of a shard belongs to a document that
    shard owns.
``manifest-crc``
    Each manifest entry's stored CRC32 matches its shard payload.

:func:`verify_index` audits an in-memory index (monolithic or sharded);
:func:`verify_store` audits a saved file through the **raw** envelope
(:func:`repro.index.storage.read_envelope`), catching on-disk rot that
``load_index`` would silently repair (its ``from_mapping`` re-sorts
posting lists).  Both return violation lists; empty means sound.
``gks check-index --deep`` exits 2 when this audit fails — distinct
from exit 1 for structural/CRC failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.index.builder import GKSIndex
from repro.index.sharding import (PARTITION_STRATEGIES, ShardedIndex,
                                  shard_of)
from repro.index.storage import payload_crc32, read_envelope
from repro.xmltree.dewey import Dewey, format_dewey, parse_dewey


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant: which one, and the offending detail."""

    invariant: str
    detail: str

    def render(self) -> str:
        return f"{self.invariant}: {self.detail}"


#: Cap on violations reported per invariant class, so a wholly rotten
#: index produces a readable report instead of one line per posting.
MAX_PER_INVARIANT = 5


class _Report:
    """Accumulates violations with per-invariant caps."""

    def __init__(self) -> None:
        self.violations: list[InvariantViolation] = []
        self._counts: dict[str, int] = {}

    def add(self, invariant: str, detail: str) -> None:
        count = self._counts.get(invariant, 0)
        self._counts[invariant] = count + 1
        if count < MAX_PER_INVARIANT:
            self.violations.append(InvariantViolation(invariant, detail))
        elif count == MAX_PER_INVARIANT:
            self.violations.append(InvariantViolation(
                invariant, "... further violations elided"))


# ----------------------------------------------------------------------
# In-memory audits
# ----------------------------------------------------------------------

def verify_index(index: GKSIndex | ShardedIndex) -> list[InvariantViolation]:
    """Audit a built index; empty list means every invariant holds."""
    report = _Report()
    if isinstance(index, ShardedIndex):
        _audit_sharded(index, report)
    else:
        _audit_monolithic(index, len(index.document_names), report)
    return report.violations


def _audit_monolithic(index: GKSIndex, documents: int, report: _Report,
                      owned: Iterable[int] | None = None,
                      label: str = "") -> None:
    where = f" [{label}]" if label else ""
    owned_set = None if owned is None else set(owned)

    for keyword, postings in index.inverted.items():
        _audit_posting_list(keyword, postings, documents, owned_set,
                            report, where)

    entity = index.hashes.entity_table
    element = index.hashes.element_table
    for table_name, table in (("entityHash", entity),
                              ("elementHash", element)):
        for dewey, child_count in table.items():
            if child_count < 0:
                report.add("hash-cross-consistency",
                           f"{table_name}[{format_dewey(dewey)}]{where} "
                           f"has negative child count {child_count}")
            if dewey[0] >= documents:
                report.add("postings-document",
                           f"{table_name}{where} references unknown "
                           f"document {dewey[0]}")
            elif owned_set is not None and dewey[0] not in owned_set:
                report.add("shard-ownership",
                           f"{table_name}{where} holds "
                           f"{format_dewey(dewey)} of unowned document "
                           f"{dewey[0]}")
    for dewey in set(entity) & set(element):
        if entity[dewey] != element[dewey]:
            report.add("hash-cross-consistency",
                       f"dual-role node {format_dewey(dewey)}{where} has "
                       f"child count {entity[dewey]} in entityHash but "
                       f"{element[dewey]} in elementHash")
    known = set(entity) | set(element)
    for dewey in entity:
        parent = dewey[:-1]
        if len(parent) >= 1 and parent not in known:
            report.add("hash-cross-consistency",
                       f"entity {format_dewey(dewey)}{where} has an "
                       f"unindexed parent")

    stats = index.stats
    local_documents = len(index.document_names)
    if stats.documents != local_documents:
        report.add("stats-agreement",
                   f"stats.documents={stats.documents}{where} but "
                   f"{local_documents} document name(s) recorded")
    if stats.entity_nodes != len(entity):
        report.add("stats-agreement",
                   f"stats.entity_nodes={stats.entity_nodes}{where} but "
                   f"entityHash holds {len(entity)} node(s)")
    occurrences = stats.text_keywords + stats.tag_keywords
    total_postings = index.inverted.total_postings
    if occurrences and total_postings > occurrences:
        report.add("stats-agreement",
                   f"{total_postings} distinct postings{where} exceed "
                   f"the {occurrences} keyword occurrence(s) counted at "
                   f"build time")


def _audit_posting_list(keyword: str, postings: list[Dewey],
                        documents: int, owned_set: set[int] | None,
                        report: _Report, where: str = "") -> None:
    if not postings:
        report.add("postings-sorted",
                   f"empty posting list for {keyword!r}{where}")
        return
    for previous, current in zip(postings, postings[1:]):
        if previous == current:
            report.add("postings-sorted",
                       f"duplicate posting {format_dewey(current)} for "
                       f"{keyword!r}{where}")
            break
        if previous > current:
            report.add("postings-sorted",
                       f"posting list for {keyword!r}{where} is out of "
                       f"order at {format_dewey(current)}")
            break
    for dewey in postings:
        if dewey[0] >= documents:
            report.add("postings-document",
                       f"posting {format_dewey(dewey)} of {keyword!r}"
                       f"{where} references unknown document {dewey[0]}")
            break
        if owned_set is not None and dewey[0] not in owned_set:
            report.add("shard-ownership",
                       f"posting {format_dewey(dewey)} of {keyword!r}"
                       f"{where} belongs to document {dewey[0]} not "
                       f"owned by this shard")
            break


def _audit_sharded(index: ShardedIndex, report: _Report) -> None:
    documents = len(index.document_names)
    _audit_partition(
        [(shard.shard_id, shard.doc_ids) for shard in index.shards],
        list(index.document_names), index.strategy, report)
    for shard in index.shards:
        _audit_monolithic(shard.index, documents, report,
                          owned=shard.doc_ids,
                          label=f"shard {shard.shard_id}")


def _audit_partition(assignments: list[tuple[int, tuple[int, ...]]],
                     document_names: list[str], strategy: str,
                     report: _Report) -> None:
    """Shared by in-memory and raw-store audits: exact partitioning."""
    documents = len(document_names)
    shards = len(assignments)
    owner: dict[int, int] = {}
    for shard_id, doc_ids in assignments:
        for doc_id in doc_ids:
            if doc_id in owner:
                report.add("shard-partition",
                           f"document {doc_id} is assigned to both "
                           f"shard {owner[doc_id]} and shard {shard_id}")
                continue
            owner[doc_id] = shard_id
            if not 0 <= doc_id < documents:
                report.add("shard-partition",
                           f"shard {shard_id} claims unknown document "
                           f"{doc_id}")
    for doc_id in range(documents):
        if doc_id not in owner:
            report.add("shard-partition",
                       f"document {doc_id} "
                       f"({document_names[doc_id]!r}) is assigned to no "
                       f"shard — it would vanish from every query")
    if strategy not in PARTITION_STRATEGIES:
        report.add("shard-routing",
                   f"unknown partitioning strategy {strategy!r}")
        return
    for doc_id, shard_id in sorted(owner.items()):
        if not 0 <= doc_id < documents:
            continue
        expected = shard_of(doc_id, document_names[doc_id], shards,
                            strategy)
        if expected != shard_id:
            report.add("shard-routing",
                       f"document {doc_id} lives on shard {shard_id} "
                       f"but strategy {strategy!r} routes it to shard "
                       f"{expected}")


# ----------------------------------------------------------------------
# Raw on-disk audits
# ----------------------------------------------------------------------

def verify_store(path: str | Path) -> list[InvariantViolation]:
    """Audit a saved index file through the raw (unrepaired) envelope.

    Structural failures (unreadable, truncated, bad CRC at the envelope
    level) raise :class:`~repro.errors.StorageError` exactly as
    ``load_index`` would — callers distinguish *broken file* (exit 1)
    from *consistent-but-wrong file* (exit 2, the violations returned
    here).
    """
    envelope = read_envelope(path)
    report = _Report()
    version = envelope.get("version")
    if version == 3:
        _audit_store_sharded(envelope, report)
    else:
        payload = envelope if version == 1 else envelope.get("payload", {})
        documents = len(payload.get("document_names", ()))
        _audit_store_payload(payload, documents, None, report)
    return report.violations


def _audit_store_sharded(envelope: dict, report: _Report) -> None:
    manifest = envelope.get("manifest", {})
    payloads = envelope.get("shards", [])
    entries = manifest.get("shards", [])
    document_names = list(manifest.get("document_names", ()))
    _audit_partition(
        [(int(entry.get("shard_id", position)),
          tuple(entry.get("doc_ids", ())))
         for position, entry in enumerate(entries)],
        document_names, manifest.get("strategy", "round_robin"), report)
    for entry, payload in zip(entries, payloads):
        shard_id = entry.get("shard_id")
        if entry.get("crc32") != payload_crc32(payload):
            report.add("manifest-crc",
                       f"manifest CRC for shard {shard_id} does not "
                       f"match its payload")
        _audit_store_payload(payload, len(document_names),
                             set(entry.get("doc_ids", ())), report,
                             label=f"shard {shard_id}")


def _audit_store_payload(payload: dict, documents: int,
                         owned: set[int] | None, report: _Report,
                         label: str = "") -> None:
    where = f" [{label}]" if label else ""
    for keyword, raw_postings in payload.get("postings", {}).items():
        postings = [parse_dewey(text) for text in raw_postings]
        _audit_posting_list(keyword, postings, documents, owned, report,
                            where)
    entity = {parse_dewey(text): count
              for text, count in payload.get("entity_hash", {}).items()}
    element = {parse_dewey(text): count
               for text, count in payload.get("element_hash", {}).items()}
    for table_name, table in (("entityHash", entity),
                              ("elementHash", element)):
        for dewey, child_count in table.items():
            if child_count < 0:
                report.add("hash-cross-consistency",
                           f"{table_name}[{format_dewey(dewey)}]{where} "
                           f"has negative child count {child_count}")
            if dewey[0] >= documents:
                report.add("postings-document",
                           f"{table_name}{where} references unknown "
                           f"document {dewey[0]}")
            elif owned is not None and dewey[0] not in owned:
                report.add("shard-ownership",
                           f"{table_name}{where} holds "
                           f"{format_dewey(dewey)} of unowned document "
                           f"{dewey[0]}")
    for dewey in set(entity) & set(element):
        if entity[dewey] != element[dewey]:
            report.add("hash-cross-consistency",
                       f"dual-role node {format_dewey(dewey)}{where} "
                       f"disagrees on child count between the tables")
    stats = payload.get("stats", {})
    local_documents = len(payload.get("document_names", ()))
    if stats.get("documents", local_documents) != local_documents:
        report.add("stats-agreement",
                   f"stats.documents={stats.get('documents')}{where} "
                   f"but {local_documents} document name(s) recorded")
    if "entity_nodes" in stats and stats["entity_nodes"] != len(entity):
        report.add("stats-agreement",
                   f"stats.entity_nodes={stats['entity_nodes']}{where} "
                   f"but entityHash holds {len(entity)} node(s)")


#: Invariant names, for the docs and the CLI's "what was checked" line.
INVARIANT_NAMES = (
    "postings-sorted", "postings-document", "hash-cross-consistency",
    "stats-agreement", "shard-partition", "shard-routing",
    "shard-ownership", "manifest-crc",
)
