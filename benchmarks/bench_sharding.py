"""Sharded build and scatter-gather serving benchmark.

Measures (a) parallel index build time for workers ∈ {1, 2, 4} over a
replicated synthetic corpus and (b) query latency (p50/p95) for
shards ∈ {1, 2, 4}, then writes the record to
``benchmarks/results/BENCH_sharding.json``.

The speedup numbers are reported honestly against ``os.cpu_count()``:
on a single-core machine forked workers serialise on the one CPU and no
build speedup is physically possible — the JSON carries the core count
so readers can interpret the ratio.  Correctness (sharded == monolithic
responses) is asserted unconditionally; speedup is recorded, not
asserted.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.core.query import Query
from repro.core.scatter import sharded_search
from repro.core.search import search
from repro.datasets.registry import load_dataset
from repro.index.builder import IndexBuilder
from repro.index.sharding import ParallelIndexBuilder
from repro.xmltree.serialize import serialize_document

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sharding.json"

WORKER_COUNTS = (1, 2, 4)
SHARD_COUNTS = (1, 2, 4)
CORPUS_DOCUMENTS = 48
QUERY_ROUNDS = 60
QUERIES = [("karen mike data mining", 1), ("databases courses", 1),
           ("karen mining students", 2)]


def _corpus_texts() -> list[str]:
    """A multi-document corpus: the figure2a document replicated."""
    document = load_dataset("figure2a")[0]
    text = serialize_document(document)
    return [text] * CORPUS_DOCUMENTS


def _build_times(texts: list[str]) -> dict[str, float]:
    times = {}
    for workers in WORKER_COUNTS:
        builder = ParallelIndexBuilder(shards=4, workers=workers)
        started = time.perf_counter()
        builder.build_from_texts(texts)
        times[str(workers)] = time.perf_counter() - started
    return times


def _percentiles(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    return {
        "p50_ms": statistics.median(ordered) * 1000.0,
        "p95_ms": ordered[min(len(ordered) - 1,
                              int(0.95 * len(ordered)))] * 1000.0,
    }


def _query_latencies(texts: list[str]
                     ) -> tuple[dict[str, dict[str, float]], dict]:
    from repro.analysis import verify_index
    from repro.xmltree.repository import Repository

    repository = Repository.from_texts(texts)
    monolithic = IndexBuilder()
    monolithic.add_repository(repository)
    mono_index = monolithic.build()

    # teardown-style audit: every index this benchmark serves must pass
    # the deep invariant verifier; audit cost is recorded in the JSON
    audit = {"indexes_audited": 0, "violations": 0, "audit_seconds": 0.0}

    def audited(index):
        started = time.perf_counter()
        violations = verify_index(index)
        audit["audit_seconds"] += time.perf_counter() - started
        audit["indexes_audited"] += 1
        audit["violations"] += len(violations)
        assert not violations, [v.render() for v in violations]
        return index

    audited(mono_index)
    latencies: dict[str, dict[str, float]] = {}
    for shards in SHARD_COUNTS:
        index = audited(ParallelIndexBuilder(shards=shards)
                        .build(repository))
        # correctness gate: every benchmarked configuration must answer
        # exactly like the monolithic index before its latency counts
        for text, s in QUERIES:
            query = Query.parse(text, s=s)
            expected = search(mono_index, query)
            actual = sharded_search(index, query)
            assert [(n.dewey, n.score) for n in actual.nodes] == \
                [(n.dewey, n.score) for n in expected.nodes], \
                f"sharded response diverged at shards={shards}"
        samples = []
        for _ in range(QUERY_ROUNDS):
            started = time.perf_counter()
            for text, s in QUERIES:
                sharded_search(index, Query.parse(text, s=s))
            samples.append(time.perf_counter() - started)
        latencies[str(shards)] = _percentiles(samples)
    return latencies, audit


def test_sharding_benchmark_report():
    texts = _corpus_texts()
    build_times = _build_times(texts)
    speedup_4 = build_times["1"] / max(build_times["4"], 1e-9)
    latencies, audit = _query_latencies(texts)
    record = {
        "cpu_count": os.cpu_count(),
        "corpus_documents": CORPUS_DOCUMENTS,
        "shards": 4,
        "build_seconds_by_workers": build_times,
        "speedup_4_workers": speedup_4,
        "query_latency_by_shards": latencies,
        "query_rounds": QUERY_ROUNDS,
        "index_audit": audit,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
    print()
    print(f"sharding bench -> {RESULTS_PATH}")
    print(json.dumps(record, indent=2, sort_keys=True))
    # soft expectation: with >= 4 real cores the parallel build should
    # win clearly; on fewer cores fork overhead legitimately dominates
    if (os.cpu_count() or 1) >= 4:
        assert speedup_4 > 1.2, (
            f"expected parallel build speedup on {os.cpu_count()} cores, "
            f"got {speedup_4:.2f}x")
