"""The transport-agnostic request broker: :class:`ServerCore`.

Every front end (the JSON-over-HTTP server in :mod:`repro.serve.http`,
the load generator in :mod:`repro.serve.loadgen`, embedding callers via
:meth:`GKSEngine.serve`) talks to one :class:`ServerCore`, which owns the
serving-side concerns the engine deliberately does not:

* **Bounded admission.**  Requests wait in a queue of at most
  ``queue_capacity``; anything beyond is rejected *synchronously* with
  :class:`~repro.errors.Overloaded` before a single byte of engine work
  — shedding is the cheapest query the server answers.
* **Deadlines.**  A request's deadline becomes an *admission budget*
  armed at arrival; the engine call receives
  ``admission.subbudget(rebase=True)``, whose deadline is the admission
  budget's :meth:`~repro.core.budget.SearchBudget.remaining_s` — so time
  spent waiting in the queue counts against the request, and a request
  that waited out its whole deadline is failed with
  :class:`~repro.errors.SearchTimeout` without touching the engine.
* **Singleflight coalescing.**  N concurrent identical requests
  (same keywords, ``s``, ranker and ``k``) share one engine search:
  followers attach to the leader's future.  Only deadline-less requests
  participate — budgeted responses are request-specific (their degraded
  shape depends on the budget), mirroring the engine LRU's rule that
  budgeted responses bypass the cache.
* **TTL result cache.**  A small time-bounded cache above the engine
  LRU absorbs repeat traffic without dispatching to a worker at all.
  Same eligibility rule: deadline-less, non-degraded responses only.
* **Graceful drain.**  :meth:`drain` sheds new arrivals (reason
  ``"draining"``) while letting queued work finish; :meth:`close` then
  stops the workers.

Equivalence contract: a request with no deadline is executed as
``engine.search(query, ranker=..., budget=None)`` — byte-for-byte the
same call a direct caller makes — so a served response (cold cache, no
coalesce hit) is node-for-node identical to the direct one, including
every budget-degraded path of the engine's own ``config.budget``.

Thread-safety: one lock guards the queue accounting, the in-flight
table, the TTL cache and every exact-count metric increment, so
``gks_serve_shed_total`` accounts for *every* rejection with no
read-modify-write races.  The lock is never held across an engine call
(checked statically by lint rule ``C001``), its protected fields are
declared with the ``# guards:`` annotation rule ``C002`` enforces, and
it is built with :func:`repro.obs.locks.new_lock` so an installed
:class:`~repro.obs.locks.LockMonitor` sees every acquisition.
"""

from __future__ import annotations

import itertools
import queue
import threading
import uuid
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import replace
from typing import Callable

from repro.core.budget import SearchBudget
from repro.core.query import Query
from repro.core.results import GKSResponse
from repro.errors import Overloaded, SearchTimeout
from repro.obs.locks import new_lock
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.trace import DEFAULT_CLOCK, Tracer
from repro.serve.config import ServeConfig

_SENTINEL = object()  # wakes one worker for shutdown


def _default_id_source() -> Callable[[], str]:
    """Process-unique request ids: random broker prefix + sequence.

    The prefix distinguishes brokers (and restarts of the same one) in
    merged logs; the counter makes ids cheap, ordered and collision-free
    within a broker.  Tests needing deterministic ids inject their own
    source.
    """
    prefix = uuid.uuid4().hex[:8]
    counter = itertools.count(1)

    def mint() -> str:
        return f"req-{prefix}-{next(counter):06d}"

    return mint


class _Request:
    """One admitted request travelling from submit to finish."""

    __slots__ = ("query", "ranker", "k", "key", "admission", "future",
                 "arrived_s", "generation", "request_id", "options")

    def __init__(self, query: Query, ranker, k: int | None, key: tuple,
                 admission: SearchBudget | None, arrived_s: float,
                 generation: int, request_id: str,
                 options: "SearchOptions | None" = None) -> None:
        self.query = query
        self.ranker = ranker
        self.k = k
        self.key = key
        self.admission = admission
        self.future: Future = Future()
        self.arrived_s = arrived_s
        self.generation = generation
        self.request_id = request_id
        self.options = options


class ServerCore:
    """A worker-pool request broker over one :class:`GKSEngine`.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.GKSEngine` to serve.
    config:
        :class:`~repro.serve.config.ServeConfig`; defaults when omitted.
    registry:
        Metrics registry for the ``gks_serve_*`` family; the process
        :func:`~repro.obs.metrics.global_registry` by default.  Tests
        asserting exact counts pass their own.
    clock:
        Monotonic time source (arrival stamps, latency, TTL expiry,
        admission budgets); injectable for deterministic tests.

    Use as a context manager, or call :meth:`close` when done::

        with ServerCore(engine, ServeConfig(workers=2)) as core:
            response = core.search("xml keyword")
    """

    def __init__(self, engine, config: ServeConfig | None = None, *,
                 registry: MetricsRegistry | None = None,
                 clock: Callable[[], float] | None = None,
                 id_source: Callable[[], str] | None = None) -> None:
        self._engine = engine
        self.config = config if config is not None else ServeConfig()
        self.registry = registry if registry is not None else global_registry()
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        if id_source is None:
            id_source = _default_id_source()
        self._id_source = id_source

        # guards: _queued, _running, _draining, _closed, _inflight,
        # guards: _ttl_cache, _generation
        self._lock = new_lock("serve.core")
        self._queue: queue.Queue = queue.Queue()
        self._queued = 0          # waiting for a worker (capacity bound)
        self._running = 0         # dequeued, executing in the engine
        self._draining = False
        self._closed = False
        self._inflight: dict[tuple, _Request] = {}
        self._ttl_cache: OrderedDict[tuple, tuple[float, GKSResponse]] = \
            OrderedDict()
        # Serving generation: bumped on every mutation, cache
        # invalidation or engine swap.  A finishing request whose stamped
        # generation is stale skips the TTL insert — a response computed
        # on a pre-mutation snapshot must not outlive the invalidation.
        self._generation = 0

        reg = self.registry
        self._m_requests = reg.counter(
            "gks_serve_requests_total",
            help="Served requests by final outcome.")
        self._m_shed = reg.counter(
            "gks_serve_shed_total",
            help="Requests rejected by admission control, by reason.")
        self._m_coalesced = reg.counter(
            "gks_serve_coalesced_total",
            help="Requests that joined an identical in-flight search.")
        self._m_ttl_hits = reg.counter(
            "gks_serve_ttl_hits_total",
            help="Requests answered from the serve-side TTL cache.")
        self._m_timeouts = reg.counter(
            "gks_serve_timeouts_total",
            help="Requests whose deadline expired while queued.")
        self._m_queue_depth = reg.gauge(
            "gks_serve_queue_depth",
            help="Requests currently waiting for a worker.")
        self._m_inflight = reg.gauge(
            "gks_serve_inflight",
            help="Requests currently executing in the engine.")
        self._m_latency = reg.histogram(
            "gks_serve_latency_seconds",
            help="Arrival-to-completion latency of accepted requests.")
        self._m_mutations = reg.counter(
            "gks_serve_mutations_total",
            help="Engine mutations observed by the serving layer.")
        self._m_swaps = reg.counter(
            "gks_serve_engine_swaps_total",
            help="Atomic engine hot swaps performed.")
        self._m_generation = reg.gauge(
            "gks_serve_generation",
            help="Current serving-cache generation.")
        self._m_swap_seconds = reg.histogram(
            "gks_serve_swap_seconds",
            help="Wall time of atomic engine hot swaps.")

        # observe engine mutations (durable engines expose the hook;
        # plain doubles in tests may not)
        register = getattr(engine, "add_mutation_listener", None)
        if callable(register):
            register(self._on_mutation)

        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"gks-serve-{n}", daemon=True)
            for n in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def mint_request_id(self) -> str:
        """A fresh correlation id from the broker's id source.

        Front ends that want the id *before* admission (to return it on
        shed/parse-error responses too) mint here and pass it to
        :meth:`submit`; otherwise :meth:`submit` mints one itself.
        """
        return self._id_source()

    def submit(self, query: str | Query, s: int | None = None, *,
               k: int | None = None,
               ranker=None,
               deadline_s: float | None = None,
               options: "SearchOptions | None" = None,
               request_id: str | None = None) -> Future:
        """Admit one request; returns a future for its response.

        Raises :class:`~repro.errors.Overloaded` synchronously when the
        request is shed (queue full, broker draining, or no deadline
        budget left) — by contract *before* any engine work.  Query
        parse errors also raise synchronously.  Engine-side failures
        (including ``SearchTimeout`` for a deadline that expired in the
        queue) surface through the future.

        *options* is the shared frozen
        :class:`~repro.core.config.SearchOptions` record; its ``s`` /
        ``k`` / ``deadline_s`` fields fill in whichever of the explicit
        parameters are unset, and its engine-side knobs (``use_cache``,
        ``strict_deadline``, ``mode``, ``threshold``) travel with the
        request to the engine call.  Requests carrying engine-side
        knobs are excluded from
        the TTL cache and coalescing, exactly like budgeted requests —
        their responses are request-specific.

        Every admitted request carries a correlation id (*request_id*,
        minted from the broker's id source when the caller brings none);
        the response's :class:`~repro.obs.stats.QueryStats` comes back
        stamped with it — including TTL hits, which are restamped with
        *this* request's id.  Coalesced followers are the one exception:
        they share the leader's future and therefore its id.
        """
        engine_options = None
        if options is not None:
            if s is None:
                s = options.s
            if k is None:
                k = options.k
            if deadline_s is None:
                deadline_s = options.deadline_s
            if (options.use_cache is not None
                    or options.strict_deadline is not None
                    or options.mode is not None
                    or options.threshold is not None):
                from repro.core.config import SearchOptions

                engine_options = SearchOptions(
                    use_cache=options.use_cache,
                    strict_deadline=options.strict_deadline,
                    mode=options.mode,
                    threshold=options.threshold)
        if ranker is None:
            ranker = self.engine.config.ranker
        if isinstance(query, str):
            query = self.engine.parse_query(
                query, s=s if s is not None else self.engine.config.s)
        elif s is not None:
            query = query.with_s(s)
        if deadline_s is None:
            deadline_s = self.config.deadline_s
        key = (query.keywords, query.effective_s, ranker, k)
        arrived = self._clock()
        if request_id is None:
            request_id = self._id_source()

        with self._lock:
            if self._draining or self._closed:
                self._count_shed("draining")
                raise Overloaded("server is draining; not accepting "
                                 "requests", reason="draining")
            if deadline_s is not None and deadline_s <= 0:
                self._count_shed("deadline")
                raise Overloaded(
                    f"request arrived with no deadline budget left "
                    f"({deadline_s}s)", reason="deadline")
            if deadline_s is None and engine_options is None:
                cached = self._ttl_get_locked(key, now=arrived)
                if cached is not None:
                    self._m_ttl_hits.inc()
                    self._m_requests.inc(labels={"outcome": "ttl-hit"})
                    future: Future = Future()
                    # restamp the shared cached response with *this*
                    # request's id (replace copies; the cached entry
                    # keeps its own stats untouched)
                    future.set_result(replace(
                        cached,
                        stats=cached.stats.with_request_id(request_id)))
                    return future
                if self.config.coalesce:
                    leader = self._inflight.get(key)
                    if leader is not None:
                        self._m_coalesced.inc()
                        self._m_requests.inc(
                            labels={"outcome": "coalesced"})
                        return leader.future
            if self._queued >= self.config.queue_capacity:
                self._count_shed("queue-full")
                raise Overloaded(
                    f"admission queue full "
                    f"({self._queued}/{self.config.queue_capacity})",
                    reason="queue-full",
                    retry_after_s=deadline_s)
            admission = None
            if deadline_s is not None:
                caps = self.engine.config.budget
                admission = SearchBudget(
                    deadline_s=deadline_s,
                    max_sl=caps.max_sl if caps is not None else None,
                    max_nodes=caps.max_nodes if caps is not None else None,
                    clock=self._clock)
                # arm at the arrival stamp already taken: a second clock
                # read here would skew injected FakeClock timelines
                admission._started = arrived
            request = _Request(query, ranker, k, key, admission, arrived,
                               self._generation, request_id,
                               options=engine_options)
            if (deadline_s is None and engine_options is None
                    and self.config.coalesce):
                self._inflight[key] = request
            self._queued += 1
            self._m_queue_depth.set(self._queued)
        self._queue.put(request)
        return request.future

    def search(self, query: str | Query, s: int | None = None, *,
               k: int | None = None,
               ranker=None,
               deadline_s: float | None = None,
               options: "SearchOptions | None" = None,
               request_id: str | None = None) -> GKSResponse:
        """Blocking convenience over :meth:`submit`."""
        return self.submit(query, s, k=k, ranker=ranker,
                           deadline_s=deadline_s, options=options,
                           request_id=request_id).result()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is _SENTINEL:
                self._queue.task_done()
                return
            with self._lock:
                self._queued -= 1
                self._running += 1
                self._m_queue_depth.set(self._queued)
                self._m_inflight.set(self._running)
            try:
                self._execute(request)
            finally:
                self._queue.task_done()

    def _execute(self, request: _Request) -> None:
        try:
            admission = request.admission
            if admission is not None and admission.remaining_s() == 0.0:
                raise SearchTimeout(
                    f"request waited out its {admission.deadline_s}s "
                    f"deadline in the admission queue")
            budget = (admission.subbudget(rebase=True)
                      if admission is not None else None)
            waited = self._clock() - request.arrived_s
            tracer = Tracer(clock=self._clock) if self.config.trace else None
            if request.k is not None:
                response = self.engine.search_top_k(
                    request.query, request.k, ranker=request.ranker,
                    budget=budget, options=request.options,
                    tracer=tracer, request_id=request.request_id)
            else:
                response = self.engine.search(
                    request.query, ranker=request.ranker,
                    budget=budget, options=request.options,
                    tracer=tracer, request_id=request.request_id)
            if tracer is not None and tracer.roots:
                # stamp serve-side context on the search's root span so
                # the span tree alone answers "how long did it queue?"
                tracer.roots[-1].set(queue_wait_s=waited)
        except Exception as exc:  # worker threads must never die
            self._finish(request, error=exc)
        else:
            self._finish(request, response=response)

    def _finish(self, request: _Request, response: GKSResponse | None = None,
                error: Exception | None = None) -> None:
        finished = self._clock()
        with self._lock:
            self._running -= 1
            self._m_inflight.set(self._running)
            # remove from the in-flight table BEFORE resolving the
            # future: a duplicate arriving after resolution must start a
            # fresh search, not join a finished one
            if self._inflight.get(request.key) is request:
                del self._inflight[request.key]
            self._m_latency.observe(finished - request.arrived_s)
            if error is None:
                if (request.admission is None
                        and request.options is None
                        and self.config.ttl_s is not None
                        and not response.degraded
                        and request.generation == self._generation):
                    self._ttl_put_locked(request.key, response, now=finished)
                self._m_requests.inc(labels={"outcome": "ok"})
            elif isinstance(error, SearchTimeout):
                self._m_timeouts.inc()
                self._m_requests.inc(labels={"outcome": "timeout"})
            else:
                self._m_requests.inc(labels={"outcome": "error"})
        if error is None:
            request.future.set_result(response)
        else:
            request.future.set_exception(error)

    # ------------------------------------------------------------------
    # Mutation & hot swap
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The engine currently serving searches (swappable at runtime)."""
        return self._engine

    @property
    def generation(self) -> int:
        """Serving generation; bumped on mutation, swap or invalidation."""
        with self._lock:
            return self._generation

    def invalidate_cache(self) -> None:
        """Drop the TTL cache and fence out in-flight stale inserts.

        Called automatically after every observed engine mutation; also
        the public hook for callers who mutate the engine behind the
        broker's back.
        """
        with self._lock:
            self._invalidate_locked()

    def _invalidate_locked(self) -> None:
        self._ttl_cache.clear()
        self._generation += 1
        self._m_generation.set(self._generation)

    def _on_mutation(self, info: dict) -> None:
        self._m_mutations.inc()
        self.invalidate_cache()

    def swap_engine(self, engine) -> int:
        """Atomically publish *engine* as the serving snapshot.

        In-flight requests finish on the engine they dispatched against;
        everything admitted after this call runs on the new one.  The
        TTL cache and the coalescing table are invalidated (a follower
        must not join a leader bound to the retired engine), and the
        generation fence keeps late responses from the old engine out of
        the cache.  Returns the new generation.
        """
        started = self._clock()
        old = self._engine
        unregister = getattr(old, "remove_mutation_listener", None)
        if callable(unregister) and old is not engine:
            unregister(self._on_mutation)
        register = getattr(engine, "add_mutation_listener", None)
        if callable(register):
            register(self._on_mutation)
        with self._lock:
            self._engine = engine
            self._inflight.clear()
            self._invalidate_locked()
            self._m_swaps.inc()
            self._m_swap_seconds.observe(self._clock() - started)
            return self._generation

    def add_document(self, text: str, name: str | None = None) -> dict:
        """Append one document through the serving layer.

        Sheds with :class:`~repro.errors.Overloaded` while draining.
        The engine call runs outside the broker lock (searches keep
        flowing during the mutation); the engine's mutation hook then
        invalidates the TTL cache, so a search admitted after this
        returns can never observe the pre-mutation corpus.
        """
        with self._lock:
            if self._draining or self._closed:
                self._count_shed("draining")
                raise Overloaded("server is draining; not accepting "
                                 "mutations", reason="draining")
        info = dict(self._engine.add_document(text, name=name))
        if not hasattr(self._engine, "add_mutation_listener"):
            self.invalidate_cache()  # engines without the hook
        info["serve_generation"] = self.generation
        return info

    def flush(self) -> dict:
        """Flush the engine's memtable to a durable segment."""
        return self._engine.flush()

    def compact(self) -> dict:
        """Compact the engine's multi-run shards."""
        return self._engine.compact()

    # ------------------------------------------------------------------
    # TTL cache (the `_locked` suffix is the C002 convention: the
    # caller holds self._lock)
    # ------------------------------------------------------------------
    def _ttl_get_locked(self, key: tuple, now: float) -> GKSResponse | None:
        if self.config.ttl_s is None:
            return None
        entry = self._ttl_cache.get(key)
        if entry is None:
            return None
        expires_at, response = entry
        if now >= expires_at:
            del self._ttl_cache[key]
            return None
        return response

    def _ttl_put_locked(self, key: tuple, response: GKSResponse,
                        now: float) -> None:
        if key in self._ttl_cache:
            del self._ttl_cache[key]
        elif len(self._ttl_cache) >= self.config.ttl_capacity:
            self._ttl_cache.popitem(last=False)
        self._ttl_cache[key] = (now + self.config.ttl_s, response)

    def _count_shed(self, reason: str) -> None:
        self._m_shed.inc(labels={"reason": reason})
        self._m_requests.inc(labels={"outcome": "shed"})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> dict:
        """JSON-able accounting snapshot of the broker."""
        with self._lock:
            return {
                "queued": self._queued,
                "running": self._running,
                "inflight_keys": len(self._inflight),
                "ttl_entries": len(self._ttl_cache),
                "generation": self._generation,
                "draining": self._draining,
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "ok": self._m_requests.value({"outcome": "ok"}),
                "shed": self._m_shed.total(),
                "coalesced": self._m_coalesced.total(),
                "ttl_hits": self._m_ttl_hits.total(),
                "timeouts": self._m_timeouts.total(),
                "errors": self._m_requests.value({"outcome": "error"}),
            }

    def healthz(self) -> dict:
        """The ``/healthz`` payload."""
        with self._lock:
            status = "draining" if (self._draining or self._closed) else "ok"
            return {"status": status, "queued": self._queued,
                    "running": self._running,
                    "workers": self.config.workers}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Stop admitting; block until every queued request finishes.

        New submissions are shed with ``Overloaded(reason="draining")``
        the moment this is called; already-admitted requests run to
        completion.  Idempotent.
        """
        with self._lock:
            self._draining = True
        self._queue.join()

    def close(self) -> None:
        """Drain, then stop the worker threads.  Idempotent."""
        self.drain()
        with self._lock:
            if self._closed:
                return
            self._closed = True
        unregister = getattr(self._engine, "remove_mutation_listener", None)
        if callable(unregister):
            unregister(self._on_mutation)
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "ServerCore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
