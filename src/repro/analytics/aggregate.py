"""Analytics over raw XML via GKS responses (paper §8 future work).

"One of our future research directions is to extend GKS to enable
analytics over raw XML data."  This module provides that layer: given a
GKS response, it treats the LCE result nodes as *records* and their
context attributes as *columns*, supporting faceted counts, numeric
aggregation and histograms — all schema-free, driven by the same node
categorization that powers DI.

A "column" is addressed by an attribute tag (``"year"``) or a tag path
suffix (``("date", "year")``): the first matching context node of each
record supplies the value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ValidationError
from repro.core.insights import attribute_nodes_of
from repro.core.results import GKSResponse, RankedNode
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository


@dataclass(frozen=True)
class FacetBucket:
    """One facet value with its support."""

    value: str
    count: int
    weight: float           # summed rank of the records in the bucket


@dataclass(frozen=True)
class FacetReport:
    column: str
    buckets: tuple[FacetBucket, ...]
    missing: int            # records without the column

    def __iter__(self):
        return iter(self.buckets)

    def top(self, count: int) -> tuple[FacetBucket, ...]:
        return self.buckets[:count]


@dataclass(frozen=True)
class AggregateReport:
    column: str
    count: int
    total: float | None
    minimum: float | None
    maximum: float | None
    mean: float | None
    missing: int            # records without a numeric value


@dataclass(frozen=True)
class HistogramBin:
    low: float
    high: float
    count: int


def _column_matches(attribute: XMLNode, column: str | Sequence[str]) -> bool:
    if isinstance(column, str):
        return attribute.tag == column
    tags = attribute.tag_path()
    suffix = list(column)
    return tags[-len(suffix):] == suffix


def _record_value(repository: Repository, node: RankedNode,
                  column: str | Sequence[str]) -> str | None:
    element = repository.node_at(node.dewey)
    if element is None:
        return None
    for attribute in attribute_nodes_of(element, mode="context"):
        if _column_matches(attribute, column):
            assert attribute.text is not None
            return attribute.text.strip()
    return None


def _records(response: GKSResponse) -> tuple[RankedNode, ...]:
    """The analytics records: LCE nodes, falling back to all results."""
    records = response.lce_nodes
    return records if records else response.nodes


def facets(repository: Repository, response: GKSResponse,
           column: str | Sequence[str], top: int | None = None
           ) -> FacetReport:
    """Group the response records by a context attribute's value."""
    counts: dict[str, int] = {}
    weights: dict[str, float] = {}
    missing = 0
    for node in _records(response):
        value = _record_value(repository, node, column)
        if value is None:
            missing += 1
            continue
        counts[value] = counts.get(value, 0) + 1
        weights[value] = weights.get(value, 0.0) + node.score

    buckets = [FacetBucket(value=value, count=counts[value],
                           weight=weights[value])
               for value in counts]
    buckets.sort(key=lambda bucket: (-bucket.weight, -bucket.count,
                                     bucket.value))
    if top is not None:
        buckets = buckets[:top]
    column_name = column if isinstance(column, str) else "/".join(column)
    return FacetReport(column=column_name, buckets=tuple(buckets),
                       missing=missing)


def _to_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


def aggregate(repository: Repository, response: GKSResponse,
              column: str | Sequence[str]) -> AggregateReport:
    """Numeric summary (count/sum/min/max/mean) of a context attribute."""
    values: list[float] = []
    missing = 0
    for node in _records(response):
        text = _record_value(repository, node, column)
        number = _to_number(text) if text is not None else None
        if number is None:
            missing += 1
        else:
            values.append(number)

    column_name = column if isinstance(column, str) else "/".join(column)
    if not values:
        return AggregateReport(column=column_name, count=0, total=None,
                               minimum=None, maximum=None, mean=None,
                               missing=missing)
    return AggregateReport(
        column=column_name, count=len(values), total=sum(values),
        minimum=min(values), maximum=max(values),
        mean=sum(values) / len(values), missing=missing)


def histogram(repository: Repository, response: GKSResponse,
              column: str | Sequence[str], bins: int = 5
              ) -> list[HistogramBin]:
    """Equal-width histogram of a numeric context attribute."""
    if bins < 1:
        raise ValidationError(f"bins must be positive: {bins}")
    values = []
    for node in _records(response):
        text = _record_value(repository, node, column)
        if text is not None:
            number = _to_number(text)
            if number is not None:
                values.append(number)
    if not values:
        return []

    low, high = min(values), max(values)
    if low == high:
        return [HistogramBin(low=low, high=high, count=len(values))]
    width = (high - low) / bins
    counts = [0] * bins
    for value in values:
        position = min(int((value - low) / width), bins - 1)
        counts[position] += 1
    return [HistogramBin(low=low + index * width,
                         high=low + (index + 1) * width,
                         count=counts[index])
            for index in range(bins)]


def group_rank(repository: Repository, response: GKSResponse,
               column: str | Sequence[str],
               key: Callable[[FacetBucket], float] = lambda b: b.weight
               ) -> list[str]:
    """Facet values ordered by a scoring key — a one-liner for 'which
    year/venue/author dominates this result set?'"""
    report = facets(repository, response, column)
    return [bucket.value
            for bucket in sorted(report.buckets,
                                 key=lambda bucket: -key(bucket))]
