"""Unit tests for Dewey-id algebra (paper §2.1)."""

import pytest

from repro.errors import DeweyError
from repro.xmltree import dewey as dw


class TestConstruction:
    def test_make_dewey_validates_components(self):
        assert dw.make_dewey([0, 2, 3]) == (0, 2, 3)

    def test_make_dewey_rejects_empty(self):
        with pytest.raises(DeweyError):
            dw.make_dewey([])

    def test_make_dewey_rejects_negative(self):
        with pytest.raises(DeweyError):
            dw.make_dewey([0, -1])

    def test_parse_round_trips_format(self):
        assert dw.parse_dewey("0.2.3") == (0, 2, 3)
        assert dw.format_dewey((0, 2, 3)) == "0.2.3"

    def test_parse_rejects_garbage(self):
        with pytest.raises(DeweyError):
            dw.parse_dewey("0.two.3")


class TestNavigation:
    def test_parent_strips_last_component(self):
        assert dw.parent_of((0, 2, 3)) == (0, 2)

    def test_parent_of_root_fails(self):
        with pytest.raises(DeweyError):
            dw.parent_of((0,))

    def test_child_appends_ordinal(self):
        assert dw.child_of((0, 2), 3) == (0, 2, 3)

    def test_child_rejects_negative_ordinal(self):
        with pytest.raises(DeweyError):
            dw.child_of((0,), -1)

    def test_ancestors_nearest_first(self):
        assert dw.ancestors_of((0, 1, 2)) == [(0, 1), (0,)]

    def test_root_has_no_ancestors(self):
        assert dw.ancestors_of((0,)) == []

    def test_depth_of_root_is_zero(self):
        assert dw.depth_of((0,)) == 0
        assert dw.depth_of((0, 4, 4)) == 2


class TestOrderAndContainment:
    def test_ancestor_is_strict(self):
        assert dw.is_ancestor((0, 1), (0, 1, 2))
        assert not dw.is_ancestor((0, 1), (0, 1))
        assert not dw.is_ancestor((0, 1), (0, 2, 0))

    def test_ancestor_or_self_includes_self(self):
        assert dw.is_ancestor_or_self((0, 1), (0, 1))

    def test_document_order_is_tuple_order(self):
        # the paper's pre-order arrival: ancestors precede descendants,
        # left subtrees precede right subtrees
        order = [(0,), (0, 0), (0, 0, 0), (0, 1), (1,)]
        assert sorted(order) == order

    def test_common_prefix_is_lca(self):
        assert dw.common_prefix((0, 1, 2), (0, 1, 5)) == (0, 1)

    def test_common_prefix_across_documents_empty(self):
        assert dw.common_prefix((0, 1), (1, 1)) == ()

    def test_lca_of_many(self):
        assert dw.lca_of([(0, 1, 2), (0, 1, 3), (0, 1, 2, 9)]) == (0, 1)

    def test_lca_of_cross_document_fails(self):
        with pytest.raises(DeweyError):
            dw.lca_of([(0, 1), (1, 2)])

    def test_lca_of_empty_fails(self):
        with pytest.raises(DeweyError):
            dw.lca_of([])


class TestBlockLCP:
    def test_block_lcp_uses_first_and_last(self):
        # Lemma 6: sorted block → LCP(first, last) is the block's LCP
        block = [(0, 1, 0), (0, 1, 1), (0, 1, 2, 5)]
        assert dw.block_lcp(block) == (0, 1)

    def test_block_lcp_rejects_empty(self):
        with pytest.raises(DeweyError):
            dw.block_lcp([])

    def test_lemma6_exhaustively_on_small_blocks(self):
        import itertools

        ids = [(0, a, b) for a in range(3) for b in range(3)]
        for block in itertools.combinations(ids, 3):
            expected = dw.lca_of(block)
            assert dw.block_lcp(sorted(block)) == expected


class TestSubtreeInterval:
    def test_interval_contains_exactly_the_subtree(self):
        lo, hi = dw.subtree_interval((0, 2))
        inside = [(0, 2), (0, 2, 0), (0, 2, 9, 9)]
        outside = [(0, 1, 9), (0, 3), (1,), (0,)]
        for dewey in inside:
            assert lo <= dewey < hi
        for dewey in outside:
            assert not (lo <= dewey < hi)
