"""Analytics over GKS responses (the paper's stated future direction)."""

from repro.analytics.aggregate import (AggregateReport, FacetBucket,
                                       FacetReport, HistogramBin,
                                       aggregate, facets, group_rank,
                                       histogram)

__all__ = [
    "AggregateReport", "FacetBucket", "FacetReport", "HistogramBin",
    "aggregate", "facets", "group_rank", "histogram",
]
