#!/usr/bin/env bash
# Observability smoke test: generate the toy corpus, run a traced
# search, and confirm the span tree and metrics snapshot come out.
#
# Usage:  bash scripts/smoke_obs.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "== generate toy corpus =="
python -m repro dataset figure2a -o "$WORKDIR"

echo "== traced search =="
OUT="$(python -m repro search "$WORKDIR"/figure2a_*.xml \
        -q "karen mike" -s 2 --trace \
        --metrics-json "$WORKDIR/metrics.json")"
echo "$OUT"

for stage in merge lcp lce rank; do
    grep -q "$stage" <<<"$OUT" || {
        echo "FAIL: span tree missing stage '$stage'" >&2; exit 1; }
done
grep -q "node(s) for" <<<"$OUT" || {
    echo "FAIL: no search results printed" >&2; exit 1; }

echo "== metrics snapshot =="
test -s "$WORKDIR/metrics.json" || {
    echo "FAIL: metrics JSON missing or empty" >&2; exit 1; }
grep -q "gks_searches_total" "$WORKDIR/metrics.json" || {
    echo "FAIL: metrics JSON lacks gks_searches_total" >&2; exit 1; }

echo "== stats report =="
python -m repro stats "$WORKDIR"/figure2a_*.xml -q "karen mike" -s 2

echo "smoke_obs OK"
