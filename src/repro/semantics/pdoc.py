"""p-document extraction: the ``p:`` attribute convention → ProbTables.

A p-document is ordinary XML whose elements may carry two reserved
attributes:

* ``p:type="IND"`` or ``p:type="MUX"`` marks the element as a
  *distributional node*;
* ``p:p="0.4"`` on a **child** of a distributional node makes that
  child uncertain — under IND it exists independently with that
  probability, under MUX the annotated siblings form one mutually
  exclusive choice whose weights are normalised to sum at most 1 (a
  weight surplus is scaled away; any deficit is the probability that
  *no* alternative is chosen).

Children without ``p:p`` (including the attribute markers themselves)
are certain.  Note the repo's default parser materialises XML
attributes as child *elements* (``attributes_as_children=True``), so
extraction looks for attribute-children tagged ``p:type`` / ``p:p``
first and falls back to ``xml_attributes`` for trees built with
``attributes_as_children=False``.  The marker elements are indexed like
any other attribute-child; that is cosmetic (the brute-force oracles
see the same trees) and documented in DESIGN.md §5.10.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ValidationError
from repro.index.builder import GKSIndex
from repro.index.probtables import DIST_KINDS, ProbTables
from repro.index.sharding import Shard, ShardedIndex
from repro.xmltree.dewey import format_dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository

#: Reserved attribute names of the p-document convention.
TYPE_ATTR = "p:type"
PROB_ATTR = "p:p"


def _marker(node: XMLNode, name: str) -> str | None:
    """The value of reserved attribute *name* on *node*, if present."""
    for child in node.children:
        if child.tag == name and child.has_text:
            return child.text
    value = node.xml_attributes.get(name)
    return value if isinstance(value, str) else None


def _dist_kind(node: XMLNode) -> str | None:
    raw = _marker(node, TYPE_ATTR)
    if raw is None:
        return None
    kind = raw.strip().upper()
    if kind not in DIST_KINDS:
        raise ValidationError(
            f"{TYPE_ATTR}={raw!r} at {format_dewey(node.dewey)}: expected "
            f"one of {DIST_KINDS}")
    return kind


def _edge_prob(node: XMLNode) -> float | None:
    raw = _marker(node, PROB_ATTR)
    if raw is None:
        return None
    try:
        prob = float(raw.strip())
    except ValueError as exc:
        raise ValidationError(
            f"{PROB_ATTR}={raw!r} at {format_dewey(node.dewey)} is not a "
            "number") from exc
    if not 0.0 <= prob <= 1.0:
        raise ValidationError(
            f"{PROB_ATTR}={prob!r} at {format_dewey(node.dewey)} outside "
            "[0, 1]")
    return prob


def extract_pdoc(root: XMLNode) -> ProbTables:
    """Compile one document's ``p:`` annotations into probability tables.

    Raises :class:`~repro.errors.ValidationError` on a malformed
    annotation (unknown kind, non-numeric or out-of-range probability).
    A ``p:p`` on a child whose parent carries no ``p:type`` is ignored:
    the convention requires the distributional kind to be explicit.
    """
    kinds: dict[tuple, str] = {}
    edge_p: dict[tuple, float] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        stack.extend(node.children)
        kind = _dist_kind(node)
        if kind is None:
            continue
        kinds[node.dewey] = kind
        weighted = [(child, prob) for child in node.children
                    for prob in [_edge_prob(child)] if prob is not None]
        if kind == "MUX":
            total = sum(prob for _, prob in weighted)
            scale = 1.0 / total if total > 1.0 else 1.0
            for child, prob in weighted:
                edge_p[child.dewey] = prob * scale
        else:
            for child, prob in weighted:
                edge_p[child.dewey] = prob
    return ProbTables(kinds=kinds, edge_p=edge_p)


def compile_tables(repository: Repository) -> ProbTables:
    """Extract and union the p-document tables of every document."""
    kinds: dict[tuple, str] = {}
    edge_p: dict[tuple, float] = {}
    for document in repository:
        tables = extract_pdoc(document.root)
        kinds.update(tables.kinds)
        edge_p.update(tables.edge_p)
    return ProbTables(kinds=kinds, edge_p=edge_p)


def has_prob_tables(index: "GKSIndex | ShardedIndex") -> bool:
    """True when *index* (or any of its shards) carries non-empty tables."""
    if isinstance(index, ShardedIndex):
        return any(bool(shard.index.probabilities)
                   for shard in index.shards)
    return bool(index.probabilities)


def tables_of(index: "GKSIndex | ShardedIndex") -> ProbTables:
    """The index's probability tables, merged across shards (empty when
    the index carries none)."""
    from repro.index.probtables import merge_tables

    if isinstance(index, ShardedIndex):
        return merge_tables([shard.index.probabilities
                             for shard in index.shards
                             if isinstance(shard.index.probabilities,
                                           ProbTables)])
    if isinstance(index.probabilities, ProbTables):
        return index.probabilities
    return ProbTables()


def attach_tables(index: "GKSIndex | ShardedIndex",
                  repository: Repository) -> "GKSIndex | ShardedIndex":
    """Return *index* with probability tables compiled from *repository*.

    Monolithic indexes get the corpus-wide table; sharded indexes get
    each shard's restriction (documents live whole in one shard, so the
    per-shard tables partition the corpus table exactly).
    """
    tables = compile_tables(repository)
    if isinstance(index, ShardedIndex):
        shards = tuple(
            Shard(shard_id=shard.shard_id, doc_ids=shard.doc_ids,
                  index=dataclasses.replace(
                      shard.index,
                      probabilities=tables.restrict(set(shard.doc_ids))))
            for shard in index.shards)
        return ShardedIndex(shards, index.strategy, index.document_names,
                            analyzer=index.analyzer)
    return dataclasses.replace(index, probabilities=tables)
