"""Tests for ranking comparison utilities and the engine response
cache."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.ranking import rank_by_keyword_count
from repro.datasets.registry import load_dataset
from repro.eval.compare import (compare_responses, jaccard, kendall_tau,
                                overlap_at)
from repro.xmltree.repository import Repository


class TestJaccard:
    def test_identical(self):
        assert jaccard([1, 2], [2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard([1], [2]) == 0.0

    def test_partial(self):
        assert jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard([], []) == 1.0


class TestKendallTau:
    def test_identical_order(self):
        assert kendall_tau([1, 2, 3, 4], [1, 2, 3, 4]) == 1.0

    def test_reversed_order(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == -1.0

    def test_single_swap(self):
        # 6 pairs, one discordant → (5-1)/6
        assert kendall_tau([1, 2, 3, 4], [2, 1, 3, 4]) == \
            pytest.approx(4 / 6)

    def test_only_common_items_count(self):
        assert kendall_tau([1, 9, 2], [2, 7, 1]) == -1.0

    def test_too_few_common(self):
        assert kendall_tau([1], [1]) == 1.0
        assert kendall_tau([1, 2], [3, 4]) == 1.0


class TestOverlapAt:
    def test_full_and_empty(self):
        assert overlap_at([1, 2, 3], [1, 2, 9], 2) == 1.0
        assert overlap_at([1, 2], [3, 4], 2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            overlap_at([1], [1], 0)


class TestCompareResponses:
    def test_rankers_compared(self):
        engine = GKSEngine(load_dataset("figure2a"))
        flow = engine.search("karen mike john student", s=2)
        count = engine.search("karen mike john student", s=2,
                              ranker=rank_by_keyword_count)
        comparison = compare_responses(flow, count)
        assert comparison.jaccard == 1.0       # same node set
        assert -1.0 <= comparison.kendall_tau <= 1.0
        assert comparison.left_size == comparison.right_size


class TestResponseCache:
    def test_repeated_search_returns_cached_object(self):
        engine = GKSEngine(load_dataset("figure2a"))
        first = engine.search("karen mike", s=2)
        second = engine.search("karen mike", s=2)
        # the ranked nodes are shared (nothing recomputed); only the
        # stats envelope differs, flagging the hit
        assert second.nodes is first.nodes
        assert not first.stats.cache_hit
        assert second.stats.cache_hit

    def test_different_s_not_conflated(self):
        engine = GKSEngine(load_dataset("figure2a"))
        assert engine.search("karen mike", s=1) is not \
            engine.search("karen mike", s=2)

    def test_different_ranker_not_conflated(self):
        engine = GKSEngine(load_dataset("figure2a"))
        flow = engine.search("karen", s=1)
        count = engine.search("karen", s=1,
                              ranker=rank_by_keyword_count)
        assert flow is not count

    def test_cache_evicts_oldest(self):
        engine = GKSEngine(load_dataset("figure2a"), cache_size=2)
        first = engine.search("karen", s=1)
        engine.search("mike", s=1)
        engine.search("john", s=1)   # evicts "karen"
        assert engine.search("karen", s=1) is not first

    def test_add_document_invalidates(self):
        engine = GKSEngine(Repository.from_texts(["<r><a>karen</a></r>"]))
        stale = engine.search("karen")
        engine.add_document("<r><b>karen</b></r>")
        fresh = engine.search("karen")
        assert fresh is not stale
        assert len(fresh) == 2

    def test_cache_can_be_disabled(self):
        engine = GKSEngine(load_dataset("figure2a"), cache_size=0)
        assert engine.search("karen") is not engine.search("karen")
