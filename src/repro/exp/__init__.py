"""Declarative experiment matrices over the serving stack.

``repro.exp`` turns a frozen run-table spec (factors × levels ×
repetitions, in JSON or TOML) into a deterministic run list, executes
each run against a real server (in-process broker or a booted
``gks serve`` subprocess), scrapes ``/metrics`` before and after,
persists one artifact directory per run, and gates aggregates against
committed baselines.  Surfaced as ``gks exp run|aggregate|compare``.
"""

from repro.exp.aggregate import (aggregate_runs, render_markdown,
                                 write_aggregate, write_csv)
from repro.exp.compare import (Violation, compare_aggregates,
                               compare_files, load_aggregate)
from repro.exp.httpclient import HTTPSearchClient
from repro.exp.runner import ExperimentRunner, RunResult, run_experiment
from repro.exp.scrape import (ParsedMetrics, metrics_delta,
                              parse_prometheus, scrape_url)
from repro.exp.spec import ExperimentSpec, RunSpec

__all__ = [
    "ExperimentRunner", "ExperimentSpec", "HTTPSearchClient",
    "ParsedMetrics", "RunResult", "RunSpec", "Violation",
    "aggregate_runs", "compare_aggregates", "compare_files",
    "load_aggregate", "metrics_delta", "parse_prometheus",
    "render_markdown", "run_experiment", "scrape_url", "write_aggregate",
    "write_csv",
]
