"""ELCA baseline — Exclusive LCA semantics (paper refs [7][17]).

A node ``v`` is an *Exclusive LCA* for query ``Q`` when, for every keyword,
``v``'s subtree holds at least one occurrence that is not inside any
descendant of ``v`` that itself contains all the keywords.  The ELCA set is
a superset of the SLCA set (the paper's Fig. 1: ``x1`` is ELCA but not
SLCA because of ``x2``).

Implementation (index-only, no tree access):

1. All-keyword nodes form the ancestor closure ``C`` of the SLCA set —
   every ancestor of an all-keyword node again contains all keywords.
2. For ``v ∈ C`` the maximal all-keyword nodes strictly inside ``v`` are
   exactly the members of ``C`` whose parent is ``v`` (closure property),
   so the exclusion zones are ``v``'s children in ``C``.
3. ``v`` is ELCA iff every keyword has more occurrences in ``v``'s subtree
   than in those zones combined — four binary searches per keyword/zone.

Cross-validated against the brute-force oracle on randomized trees.
"""

from __future__ import annotations

from repro.baselines.slca import slca_indexed_lookup_eager
from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.index.postings import count_in_subtree
from repro.xmltree.dewey import Dewey, ancestors_of


def all_keyword_closure(index: GKSIndex, query: Query) -> list[Dewey]:
    """All nodes whose subtree contains every query keyword, sorted.

    Computed as the ancestor closure of the SLCA set.
    """
    slcas = slca_indexed_lookup_eager(index, query)
    closure: set[Dewey] = set()
    for dewey in slcas:
        closure.add(dewey)
        closure.update(ancestors_of(dewey))
    return sorted(closure)


def elca(index: GKSIndex, query: Query) -> list[Dewey]:
    """ELCA nodes in document order."""
    closure = all_keyword_closure(index, query)
    if not closure:
        return []
    closure_set = set(closure)
    children_in_closure: dict[Dewey, list[Dewey]] = {}
    for dewey in closure:
        parent = dewey[:-1]
        if parent in closure_set:
            children_in_closure.setdefault(parent, []).append(dewey)

    results: list[Dewey] = []
    for dewey in closure:
        zones = children_in_closure.get(dewey, [])
        if _has_exclusive_witnesses(index, query, dewey, zones):
            results.append(dewey)
    return results


def _has_exclusive_witnesses(index: GKSIndex, query: Query, dewey: Dewey,
                             zones: list[Dewey]) -> bool:
    for keyword in query.keywords:
        postings = index.postings(keyword)
        inside = count_in_subtree(postings, dewey)
        excluded = sum(count_in_subtree(postings, zone) for zone in zones)
        if inside - excluded <= 0:
            return False
    return True
