"""Synthetic SIGMOD Record corpus (paper §7 workloads QS1–QS4, §7.2, §7.6).

Shape of the real SigmodRecord.xml: issues containing articles; each
article has ``title``, ``initPage``/``endPage`` attributes and a repeating
``<author>`` list under ``<authors>``.  Articles with a single author make
``<authors>``/``<article>`` connecting nodes — the §7.2 ground-truth
discussion (447 of the 1504+67 connecting nodes came from single-author
articles).

Planted structure for the Table 6 queries:

* QS1: Wasserman and Rowe share two articles.
* QS2–QS4: each pool gets joint articles with pairwise overlaps so that
  ``s=|Q|/2`` responses are small but non-empty, matching Table 7's shape.
* §7.6: Rowe and Stonebraker co-author five articles (and appear in no
  DBLP entry), the hybrid query's SIGMOD side.
"""

from __future__ import annotations

from repro.datasets import names
from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode


def generate_sigmod(scale: int = 1, seed: int = 0) -> XMLNode:
    """Build the synthetic SigmodRecord tree (~60·scale articles)."""
    synth = Synth(seed ^ 0x5164)
    root = XMLNode("SigmodRecord", (0,))
    issues = root.add_child("issues")
    pool = names.synthetic_authors()

    planted = _planted_articles(synth, pool, scale)
    # One planted article per issue at most: high-level <issue> entities
    # must not aggregate several planted author sets, otherwise they would
    # outcount the articles themselves (the paper's real corpus is sparse
    # enough that this never happens).
    issue_count = max(len(planted), 2 * scale + 2)
    volume = 11
    for issue_no in range(issue_count):
        issue = issues.add_child("issue")
        issue.add_child("volume", text=str(volume + issue_no // 4))
        issue.add_child("number", text=str(issue_no % 4 + 1))
        articles = issue.add_child("articles")
        for author_lists in _articles_for_issue(synth, pool, planted,
                                                issue_no, issue_count):
            _add_article(articles, synth, author_lists)
    return root


def _planted_articles(synth: Synth, pool: list[str],
                      scale: int) -> list[list[str]]:
    planted: list[list[str]] = []
    # QS1's authors never co-author (Table 7: SLCA = 0, max keywords = 1);
    # each gets solo and mixed-crowd articles instead.
    wasserman, rowe = names.QS1_AUTHORS
    planted.append([wasserman])
    planted.append([wasserman, synth.pick(pool)])
    planted.append([rowe, synth.pick(pool)])

    qs2 = names.QS2_AUTHORS
    planted.append([qs2[0], qs2[1]])
    planted.append([qs2[2], qs2[3]])
    planted.append([qs2[1], qs2[2]])

    qs3 = names.QS3_AUTHORS
    planted.append([qs3[0], qs3[1], qs3[2]])
    planted.append([qs3[3], qs3[4], qs3[5]])

    qs4 = names.QS4_AUTHORS
    planted.append(list(qs4))  # the 8-author article behind QS4's max=8
    planted.append(qs4[:4])    # a 4-subset article: QS4 at s=4 returns 2
    planted.append([qs4[0], qs4[1]])
    planted.append([qs4[2], qs4[3], qs4[4]])

    for author in qs2 + qs3:
        planted.append([author])  # single-author CN articles (§7.2)

    hybrid = names.HYBRID_SIGMOD_AUTHORS
    for _ in range(5):  # §7.6: five joint articles by Rowe & Stonebraker
        planted.append(list(hybrid))
    return planted


def _articles_for_issue(synth: Synth, pool: list[str],
                        planted: list[list[str]], issue_no: int,
                        issue_count: int) -> list[list[str]]:
    """Distribute planted articles across issues, pad with random ones."""
    share = [planted[position]
             for position in range(issue_no, len(planted), issue_count)]
    padding = synth.int_between(4, 8)
    for _ in range(padding):
        author_count = synth.int_between(1, 4)
        authors: list[str] = []
        while len(authors) < author_count:
            author = pool[synth.skewed_index(len(pool))]
            if author not in authors:
                authors.append(author)
        share.append(authors)
    return share


def _add_article(articles: XMLNode, synth: Synth,
                 authors: list[str]) -> XMLNode:
    article = articles.add_child("article")
    article.add_child("title", text=synth.title())
    start, end = synth.pages()
    article.add_child("initPage", text=start)
    article.add_child("endPage", text=end)
    holder = article.add_child("authors")
    for author in authors:
        holder.add_child("author", text=author)
    return article
