"""Experiment-matrix harness: spec expansion, scrape round-trip,
delta semantics, the regression gate, the end-to-end runner, and the
request-id correlation contract (HTTP header ↔ stats ↔ span tree ↔
slow-query log)."""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.engine import GKSEngine
from repro.errors import (ConfigError, GKSError, Overloaded, QueryError,
                          SearchTimeout, ValidationError)
from repro.exp import (ExperimentSpec, HTTPSearchClient, compare_aggregates,
                       metrics_delta, parse_prometheus, run_experiment,
                       write_aggregate)
from repro.exp.httpclient import _map_http_error
from repro.obs.metrics import (MetricsRegistry, escape_label_value,
                               global_registry, unescape_label_value)
from repro.obs.stats import QueryStats, SlowQuery
from repro.serve import LoadGenerator, ServeConfig, ServerCore, serve_http
from repro.xmltree.repository import Repository

pytestmark = pytest.mark.exp

CORPUS = ("<library><book><title>xml search</title>"
          "<author>ada byron</author></book>"
          "<book><title>graph theory</title>"
          "<author>paul erdos</author></book></library>")


def _repository() -> Repository:
    repository = Repository()
    repository.parse(CORPUS, name="corpus.xml")
    return repository


def _engine(**kwargs) -> GKSEngine:
    return GKSEngine(_repository(), **kwargs)


# ---------------------------------------------------------------------------
# Spec expansion
# ---------------------------------------------------------------------------
class TestSpecExpansion:
    def _spec(self, **overrides) -> ExperimentSpec:
        raw = {
            "name": "t",
            "base": {"load": {"queries": ["xml"]}},
            "factors": {"engine.shards": [1, 2],
                        "load.concurrency": [2, 4, 8]},
            **overrides,
        }
        return ExperimentSpec.from_dict(raw)

    def test_product_times_repetitions(self):
        spec = self._spec(repetitions=2)
        runs = spec.expand()
        assert len(runs) == 2 * 3 * 2 == spec.run_count

    def test_expansion_is_deterministic(self):
        first = [run.run_id for run in self._spec().expand()]
        second = [run.run_id for run in self._spec().expand()]
        assert first == second
        assert len(set(first)) == len(first)

    def test_levels_land_at_their_dotted_paths(self):
        runs = self._spec().expand()
        assert runs[0].params["engine"]["shards"] == 1
        assert runs[0].params["load"]["concurrency"] == 2
        assert runs[-1].params["engine"]["shards"] == 2
        assert runs[-1].params["load"]["concurrency"] == 8
        # the base tree rides along untouched
        assert runs[0].params["load"]["queries"] == ["xml"]

    def test_runs_do_not_share_params_trees(self):
        runs = self._spec().expand()
        runs[0].params["load"]["queries"].append("mutated")
        assert runs[1].params["load"]["queries"] == ["xml"]

    def test_dict_levels_bundle_overrides(self):
        spec = ExperimentSpec.from_dict({
            "name": "t", "base": {},
            "factors": {"shape": [
                {"id": "open", "load.mode": "open", "load.rate_rps": 10},
                {"id": "closed", "load.mode": "closed"},
            ]},
        })
        runs = spec.expand()
        assert [dict(run.factors)["shape"] for run in runs] \
            == ["open", "closed"]
        assert runs[0].params["load"]["rate_rps"] == 10

    def test_factor_labels_appear_in_run_ids(self):
        runs = self._spec().expand()
        assert "engine.shards=1" in runs[0].run_id
        assert runs[0].run_id.endswith("__r0")

    @pytest.mark.parametrize("raw, fragment", [
        ({"base": {}}, "name"),
        ({"name": "t", "mode": "warp"}, "mode"),
        ({"name": "t", "repetitions": 0}, "repetitions"),
        ({"name": "t", "bogus_key": 1}, "unknown"),
        ({"name": "t", "factors": {"f": []}}, "non-empty"),
        ({"name": "t", "factors": {"f": [1, 1]}}, "duplicate"),
    ])
    def test_invalid_specs_raise(self, raw, fragment):
        with pytest.raises(ConfigError, match=fragment):
            ExperimentSpec.from_dict(raw)

    def test_toml_and_json_load_identically(self, tmp_path):
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps({
            "name": "t", "repetitions": 2,
            "factors": {"engine.shards": [1, 2]}}))
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(
            'name = "t"\nrepetitions = 2\n\n[factors]\n'
            '"engine.shards" = [1, 2]\n')
        from_json = ExperimentSpec.load(json_path)
        from_toml = ExperimentSpec.load(toml_path)
        assert [run.run_id for run in from_json.expand()] \
            == [run.run_id for run in from_toml.expand()]


# ---------------------------------------------------------------------------
# Prometheus escaping (regression tests) and scrape round-trip
# ---------------------------------------------------------------------------
class TestLabelEscaping:
    @pytest.mark.parametrize("raw, escaped", [
        ('plain', 'plain'),
        ('back\\slash', 'back\\\\slash'),
        ('quo"te', 'quo\\"te'),
        ('new\nline', 'new\\nline'),
        ('all\\"\n', 'all\\\\\\"\\n'),
    ])
    def test_escape_and_inverse(self, raw, escaped):
        assert escape_label_value(raw) == escaped
        assert unescape_label_value(escaped) == raw

    def test_exposition_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("evil_total").inc(
            labels={"q": 'say "hi"\\now\nplease'})
        text = registry.render_prometheus()
        line = next(l for l in text.splitlines()
                    if l.startswith("evil_total"))
        assert '\\"hi\\"' in line
        assert "\\\\now" in line
        assert "\\n" in line
        assert "\n" not in line.replace("\\n", "")

    def test_help_text_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.gauge("g", help="line one\nc:\\temp")
        text = registry.render_prometheus()
        help_line = next(l for l in text.splitlines()
                         if l.startswith("# HELP"))
        assert help_line == "# HELP g line one\\nc:\\\\temp"


class TestScrapeRoundTrip:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter("req_total", help="Requests seen.")
        requests.inc(3, labels={"outcome": "ok"})
        requests.inc(1, labels={"outcome": "error"})
        registry.gauge("depth", help="Queue depth.").set(7)
        latency = registry.histogram("lat_seconds",
                                     buckets=(0.1, 1.0))
        latency.observe(0.05)
        latency.observe(0.5)
        latency.observe(5.0)
        return registry

    def test_round_trip_values_and_types(self):
        parsed = parse_prometheus(self._registry().render_prometheus())
        assert parsed.types["req_total"] == "counter"
        assert parsed.types["lat_seconds"] == "histogram"
        assert parsed.value("req_total", {"outcome": "ok"}) == 3
        assert parsed.value("req_total", {"outcome": "error"}) == 1
        assert parsed.value("depth") == 7
        assert parsed.help["req_total"] == "Requests seen."

    def test_histogram_buckets_are_cumulative(self):
        parsed = parse_prometheus(self._registry().render_prometheus())
        assert parsed.value("lat_seconds_bucket", {"le": "0.1"}) == 1
        assert parsed.value("lat_seconds_bucket", {"le": "1"}) == 2
        assert parsed.value("lat_seconds_bucket", {"le": "+Inf"}) == 3
        assert parsed.value("lat_seconds_count") == 3
        assert parsed.value("lat_seconds_sum") == pytest.approx(5.55)
        assert parsed.family_of("lat_seconds_bucket") == "lat_seconds"

    def test_escaped_label_values_round_trip(self):
        registry = MetricsRegistry()
        nasty = 'a="b",c\\d\ne'
        registry.counter("c_total").inc(labels={"q": nasty})
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed.value("c_total", {"q": nasty}) == 1

    def test_malformed_lines_raise(self):
        with pytest.raises(ValidationError):
            parse_prometheus("what even is this line")
        with pytest.raises(ValidationError):
            parse_prometheus('m{unterminated="oops 1')


class TestMetricsDelta:
    def test_counters_subtract_gauges_take_after(self):
        before_reg = MetricsRegistry()
        before_reg.counter("c_total").inc(5)
        before_reg.gauge("g").set(100)
        after_reg = MetricsRegistry()
        after_reg.counter("c_total").inc(9)
        after_reg.gauge("g").set(2)
        after_reg.counter("fresh_total").inc(4)
        before = parse_prometheus(before_reg.render_prometheus())
        after = parse_prometheus(after_reg.render_prometheus())
        delta = metrics_delta(before, after)
        assert delta["c_total"]["series"][""] == 4
        assert delta["g"]["series"][""] == 2          # state, not diff
        assert delta["fresh_total"]["series"][""] == 4  # absent = from 0
        assert delta["g"]["type"] == "gauge"

    def test_unmoved_series_are_dropped(self):
        registry = MetricsRegistry()
        registry.counter("same_total").inc(3)
        snapshot = parse_prometheus(registry.render_prometheus())
        assert metrics_delta(snapshot, snapshot) == {}


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------
def _aggregate(**row_overrides) -> dict:
    row = {"run_id": "000__r0", "completed": 20, "errors": 0,
           "shed": 0, "timeouts": 0, "submitted": 20,
           "throughput_rps": 100.0, **row_overrides}
    return {"experiment": "t", "rows": [row]}


class TestCompare:
    def test_identical_aggregates_pass(self):
        assert compare_aggregates(_aggregate(), _aggregate()) == []

    def test_exact_field_drift_is_a_violation(self):
        violations = compare_aggregates(_aggregate(completed=19),
                                        _aggregate())
        assert [v.field for v in violations] == ["completed"]
        assert "expected 20, got 19" in violations[0].render()

    def test_relative_tolerance_pass_and_fail(self):
        baseline = _aggregate()
        baseline["tolerances"] = {"exact": [],
                                  "relative": {"throughput_rps": 0.5}}
        ok = compare_aggregates(_aggregate(throughput_rps=60.0), baseline)
        assert ok == []
        bad = compare_aggregates(_aggregate(throughput_rps=10.0), baseline)
        assert [v.kind for v in bad] == ["relative"]

    def test_missing_and_extra_runs_are_violations(self):
        current = _aggregate()
        current["rows"][0] = dict(current["rows"][0], run_id="999__r0")
        kinds = sorted(v.kind for v in
                       compare_aggregates(current, _aggregate()))
        assert kinds == ["extra", "missing"]

    def test_baseline_without_a_field_skips_it(self):
        baseline = _aggregate()
        del baseline["rows"][0]["timeouts"]
        assert compare_aggregates(_aggregate(timeouts=9), baseline) == []

    def test_tolerances_argument_overrides_baseline(self):
        baseline = _aggregate()
        baseline["tolerances"] = {"exact": ["completed"]}
        violations = compare_aggregates(
            _aggregate(errors=5), baseline,
            tolerances={"exact": ["errors"]})
        assert [v.field for v in violations] == ["errors"]


# ---------------------------------------------------------------------------
# End-to-end runner (in-process mode)
# ---------------------------------------------------------------------------
class TestRunnerEndToEnd:
    SPEC = {
        "name": "e2e",
        "mode": "inproc",
        "base": {
            "dataset": {"name": "figure2a"},
            "engine": {"shards": 1},
            "serve": {"workers": 2, "queue_capacity": 16},
            "load": {"mode": "closed", "concurrency": 2, "iterations": 3,
                     "queries": ["XML Author"], "s": 1},
        },
        "factors": {"engine.shards": [1, 2]},
    }

    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("exp")
        spec = ExperimentSpec.from_dict(self.SPEC)
        results = run_experiment(spec, out, log=None)
        assert len(results) == 2
        return out

    def test_artifact_directories_are_complete(self, out_dir):
        run_dirs = sorted((out_dir / "runs").iterdir())
        assert len(run_dirs) == 2
        for run_dir in run_dirs:
            for artifact in ("run.json", "report.json", "sample.json",
                             "metrics_before.prom", "metrics_after.prom",
                             "metrics_delta.json"):
                assert (run_dir / artifact).exists(), artifact

    def test_delta_counts_exactly_the_declared_load(self, out_dir):
        for run_dir in sorted((out_dir / "runs").iterdir()):
            delta = json.loads(
                (run_dir / "metrics_delta.json").read_text())
            served = sum(
                delta["gks_serve_requests_total"]["series"].values())
            report = json.loads((run_dir / "report.json").read_text())
            assert served == report["submitted"] == 6
            assert report["completed"] == 6

    def test_probe_sample_is_correlated(self, out_dir):
        for run_dir in sorted((out_dir / "runs").iterdir()):
            sample = json.loads((run_dir / "sample.json").read_text())
            assert sample["request_id"]
            assert sample["stats"]["request_id"] == sample["request_id"]

    def test_aggregate_tables_and_self_compare(self, out_dir):
        aggregate = write_aggregate(out_dir)
        assert (out_dir / "aggregate.csv").exists()
        assert (out_dir / "aggregate.md").exists()
        assert len(aggregate["rows"]) == 2
        assert compare_aggregates(aggregate, aggregate) == []
        regressed = json.loads(json.dumps(aggregate))
        regressed["rows"][1]["completed"] -= 1
        assert compare_aggregates(regressed, aggregate) != []


# ---------------------------------------------------------------------------
# Request-id correlation
# ---------------------------------------------------------------------------
class TestRequestIdCorrelation:
    def _core(self, **engine_kwargs):
        engine = _engine(metrics=MetricsRegistry(), **engine_kwargs)
        core = ServerCore(
            engine, ServeConfig(workers=2, trace=True, ttl_s=60.0),
            registry=engine.metrics_registry,
            id_source=iter(f"rid-{n}" for n in range(100)).__next__)
        return engine, core

    def test_minted_id_lands_on_stats_span_and_slow_log(self):
        engine, core = self._core(slow_query_threshold_s=0.0)
        with core:
            response = core.search("xml ada")
        assert response.stats.request_id == "rid-0"
        root = engine.recent_traces()[-1]
        assert root.attributes["request_id"] == "rid-0"
        assert "queue_wait_s" in root.attributes
        slow = engine.slow_queries()[-1]
        assert slow.request_id == "rid-0"
        assert "rid=rid-0" in slow.render()

    def test_caller_supplied_id_wins(self):
        _, core = self._core()
        with core:
            response = core.search("xml", request_id="mine-42")
        assert response.stats.request_id == "mine-42"

    def test_ttl_hit_restamps_with_the_new_request_id(self):
        _, core = self._core()
        with core:
            first = core.search("xml")
            second = core.search("xml")
        assert first.stats.request_id == "rid-0"
        assert second.stats.request_id == "rid-1"
        assert second.nodes == first.nodes

    def test_engine_lru_hit_restamps_too(self):
        engine = _engine(metrics=MetricsRegistry())
        cold = engine.search("xml", request_id="a")
        warm = engine.search("xml", request_id="b")
        assert cold.stats.request_id == "a"
        assert warm.stats.request_id == "b" and warm.stats.cache_hit

    def test_stats_dict_and_render_carry_the_id(self):
        stats = QueryStats(total_seconds=1.0, request_id="r-9")
        assert stats.to_dict()["request_id"] == "r-9"
        entry = SlowQuery(query_text="q", s=1, stats=stats, unix_time=0.0)
        assert entry.render().endswith("rid=r-9")

    def test_direct_engine_calls_have_no_id(self):
        engine = _engine(metrics=MetricsRegistry())
        assert engine.search("xml").stats.request_id is None


@pytest.fixture()
def traced_http_server():
    engine = _engine(metrics=MetricsRegistry(),
                     slow_query_threshold_s=0.0)
    core = ServerCore(engine, ServeConfig(workers=2, trace=True),
                      registry=engine.metrics_registry)
    server = serve_http(core)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}", engine
    server.shutdown()
    server.server_close()
    core.close()


class TestHTTPCorrelation:
    """The PR's acceptance contract: one id joins the HTTP response,
    the span tree and the slow-query log for the same query."""

    def test_response_header_spans_and_slow_log_share_one_id(
            self, traced_http_server):
        base, engine = traced_http_server
        with urllib.request.urlopen(f"{base}/search?q=xml+ada",
                                    timeout=10) as response:
            rid = response.headers["X-Request-Id"]
            payload = json.load(response)
        assert rid
        assert payload["serve"]["request_id"] == rid
        root = engine.recent_traces()[-1]
        assert root.attributes["request_id"] == rid
        assert engine.slow_queries()[-1].request_id == rid

    def test_client_header_is_respected_end_to_end(
            self, traced_http_server):
        base, engine = traced_http_server
        request = urllib.request.Request(
            f"{base}/search?q=graph",
            headers={"X-Request-Id": "client-7"})
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"] == "client-7"
            payload = json.load(response)
        assert payload["serve"]["request_id"] == "client-7"
        assert engine.slow_queries()[-1].request_id == "client-7"

    def test_error_responses_still_carry_the_header(
            self, traced_http_server):
        base, _ = traced_http_server
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{base}/search", timeout=10)
        assert caught.value.code == 400
        assert caught.value.headers["X-Request-Id"]

    def test_httpclient_search_and_400_mapping(self, traced_http_server):
        base, _ = traced_http_server
        with HTTPSearchClient(base, pool=2) as client:
            payload = client.search("xml", 1, request_id="hc-1")
            assert payload["serve"]["request_id"] == "hc-1"
            assert client.healthz()["status"] == "ok"
            assert "gks_serve_requests_total" in client.metrics_text()
            with pytest.raises(GKSError):
                client.search("")  # empty query -> 400


# ---------------------------------------------------------------------------
# HTTP client error mapping & loadgen shed classification
# ---------------------------------------------------------------------------
def _http_error(code: int, body: dict,
                headers: dict | None = None) -> urllib.error.HTTPError:
    message = io.BytesIO(json.dumps(body).encode())
    import email.message

    header_obj = email.message.Message()
    for name, value in (headers or {}).items():
        header_obj[name] = value
    return urllib.error.HTTPError("http://x/search", code, "nope",
                                  header_obj, message)


class TestHTTPErrorMapping:
    def test_429_maps_to_overloaded_with_hint(self):
        error = _map_http_error(_http_error(
            429, {"error": "full", "reason": "queue-full"},
            {"Retry-After": "0.25"}))
        assert isinstance(error, Overloaded)
        assert error.reason == "queue-full"
        assert error.retry_after_s == pytest.approx(0.25)

    def test_504_maps_to_search_timeout(self):
        assert isinstance(
            _map_http_error(_http_error(504, {"error": "slow"})),
            SearchTimeout)

    def test_400_maps_to_query_error(self):
        assert isinstance(
            _map_http_error(_http_error(400, {"error": "bad"})),
            QueryError)

    def test_unknown_code_maps_to_gks_error(self):
        error = _map_http_error(_http_error(500, {"error": "boom"}))
        assert isinstance(error, GKSError)
        assert "boom" in str(error)


class TestLoadgenShedClassification:
    def test_async_overloaded_counts_as_shed(self):
        from concurrent.futures import Future

        class ShedCore:
            def submit(self, query, s=None, *, k=None, ranker=None,
                       deadline_s=None, request_id=None):
                future: Future = Future()
                future.set_exception(
                    Overloaded("late 429", reason="queue-full"))
                return future

        generator = LoadGenerator(ShedCore())
        report = generator.run_closed(["q"], concurrency=1, iterations=2)
        assert report.shed == 2
        assert report.errors == 0
        assert report.outcomes[0].error == "queue-full"


# ---------------------------------------------------------------------------
# Durability-path metrics
# ---------------------------------------------------------------------------
@pytest.mark.durability
class TestDurabilityMetrics:
    def test_wal_flush_and_store_metrics_reach_the_exposition(
            self, tmp_path):
        registry = global_registry()
        appends = registry.counter("gks_wal_appends_total")
        fsyncs = registry.histogram("gks_wal_fsync_seconds")
        flushed = registry.counter("gks_store_flushed_documents_total")
        appends_0 = appends.total()
        fsyncs_0 = fsyncs.count()
        flushed_0 = flushed.value()

        engine = GKSEngine.open(CORPUS, store_path=tmp_path / "store")
        engine.add_document("<doc><x>fresh words here</x></doc>",
                            name="extra.xml")
        assert appends.total() == appends_0 + 1
        assert fsyncs.count() >= fsyncs_0 + 1
        assert registry.gauge("gks_store_documents").value() >= 1

        engine.flush()
        assert flushed.value() == flushed_0 + 1
        own = engine.metrics_registry
        assert own.histogram("gks_store_flush_seconds").count() >= 1
        assert own.gauge("gks_memtable_pending").value() == 0
        assert own.gauge("gks_engine_generation").value() >= 1
        # the flush span is retained for trace inspection
        assert any(span.name == "flush"
                   for span in engine.recent_traces())
        # and everything renders into the text exposition
        text = registry.render_prometheus()
        assert "gks_wal_append_seconds" in text
        assert "gks_wal_appended_bytes_total" in text
        parsed = parse_prometheus(text)
        assert parsed.value("gks_wal_appends_total") >= 1

    def test_swap_engine_records_duration(self):
        registry = MetricsRegistry()
        engine = _engine(metrics=registry)
        with ServerCore(engine, ServeConfig(workers=1),
                        registry=registry) as core:
            core.swap_engine(_engine(metrics=registry))
            histogram = registry.histogram("gks_serve_swap_seconds")
            assert histogram.count() == 1
