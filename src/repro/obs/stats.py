"""Per-query statistics and the slow-query ring buffer.

A :class:`QueryStats` record rides on every
:class:`~repro.core.results.GKSResponse`: the merge→lcp→lce→rank stage
durations (measured by the pipeline's injectable tracer clock), the work
counters the §4.2 complexity bound is stated in (postings scanned, LCP
entries, LCE nodes, response nodes emitted), and the serving context
(cache hit, budget trips, degraded flag).  The evaluation harness and the
stage-breakdown bench consume this record instead of re-timing searches.

:class:`SlowQueryLog` keeps the most recent above-threshold queries in a
bounded ring buffer so a long-running ``gks shell``/serve session can be
asked "what was slow lately?" without unbounded memory.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, replace
from repro.errors import ConfigError


@dataclass(frozen=True)
class QueryStats:
    """Everything measured about one query's trip through the pipeline."""

    total_seconds: float = 0.0
    merge_seconds: float = 0.0
    lcp_seconds: float = 0.0
    lce_seconds: float = 0.0
    rank_seconds: float = 0.0
    postings_scanned: int = 0   # |SL|: merged posting entries processed
    lcp_entries: int = 0
    lce_nodes: int = 0
    nodes_emitted: int = 0      # response nodes returned to the caller
    cache_hit: bool = False
    budget_trips: int = 0
    trip_stage: str | None = None
    trip_reason: str | None = None
    degraded: bool = False
    #: Correlation id minted at serving admission (None for direct
    #: engine calls); joins this record to serve logs, span trees and
    #: experiment artifacts.
    request_id: str | None = None
    #: Query semantics mode ("strict" | "probabilistic" | "relaxed").
    #: Non-strict values surface in to_dict()/render(); the strict
    #: default is omitted so pre-semantics wire shapes are unchanged.
    mode: str = "strict"
    #: Candidates the semantics subsystem evaluated (probabilistic
    #: candidate nodes, or relaxation rewrites).
    semantics_candidates: int = 0
    #: True when an empty strict result was rescued by relaxation.
    relaxed: bool = False

    def stage_breakdown(self) -> dict[str, float]:
        return {
            "merge": self.merge_seconds,
            "lcp": self.lcp_seconds,
            "lce": self.lce_seconds,
            "rank": self.rank_seconds,
        }

    def stage_sum(self) -> float:
        return sum(self.stage_breakdown().values())

    def as_cache_hit(self) -> "QueryStats":
        """A copy marking this response as served from the LRU cache."""
        return replace(self, cache_hit=True)

    def with_request_id(self, request_id: str) -> "QueryStats":
        """A copy stamped with the serving-side correlation id."""
        return replace(self, request_id=request_id)

    def to_dict(self) -> dict:
        payload = {
            "total_seconds": self.total_seconds,
            "stages": self.stage_breakdown(),
            "postings_scanned": self.postings_scanned,
            "lcp_entries": self.lcp_entries,
            "lce_nodes": self.lce_nodes,
            "nodes_emitted": self.nodes_emitted,
            "cache_hit": self.cache_hit,
            "budget_trips": self.budget_trips,
            "trip_stage": self.trip_stage,
            "trip_reason": self.trip_reason,
            "degraded": self.degraded,
            "request_id": self.request_id,
        }
        # Non-strict keys appear only when set: strict-mode payloads
        # stay byte-identical to their pre-semantics shape.
        if self.mode != "strict":
            payload["mode"] = self.mode
            payload["semantics_candidates"] = self.semantics_candidates
        if self.relaxed:
            payload["relaxed"] = True
        return payload

    def render(self) -> str:
        stages = "  ".join(
            f"{name}={seconds * 1000:.2f}ms"
            for name, seconds in self.stage_breakdown().items())
        flags = []
        if self.mode != "strict":
            flags.append(f"mode={self.mode}")
        if self.relaxed:
            flags.append("relaxed")
        if self.cache_hit:
            flags.append("cache-hit")
        if self.degraded:
            flags.append(f"degraded@{self.trip_stage}:{self.trip_reason}")
        tail = f"  [{', '.join(flags)}]" if flags else ""
        return (f"total={self.total_seconds * 1000:.2f}ms  {stages}  "
                f"|SL|={self.postings_scanned} lcp={self.lcp_entries} "
                f"lce={self.lce_nodes} out={self.nodes_emitted}{tail}")


@dataclass(frozen=True)
class SlowQuery:
    """One slow-query log entry."""

    query_text: str
    s: int
    stats: QueryStats
    unix_time: float

    @property
    def request_id(self) -> str | None:
        """The serving-side correlation id, when the query carried one."""
        return self.stats.request_id

    def render(self) -> str:
        rid = f"  rid={self.request_id}" if self.request_id else ""
        return (f"{self.stats.total_seconds * 1000:8.2f} ms  "
                f"s={self.s}  {self.query_text}{rid}")


class SlowQueryLog:
    """Bounded ring buffer of the most recent above-threshold queries."""

    def __init__(self, threshold_s: float = 0.5, capacity: int = 128,
                 wall_clock=None) -> None:
        if threshold_s < 0:
            raise ConfigError(f"threshold_s must be >= 0: {threshold_s}")
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1: {capacity}")
        self.threshold_s = threshold_s
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        self._wall_clock = wall_clock if wall_clock is not None else time.time
        self.total_observed = 0     # every query seen, slow or not

    def observe(self, query_text: str, s: int,
                stats: QueryStats) -> SlowQuery | None:
        """Record *stats* if slow; returns the entry when one was filed."""
        self.total_observed += 1
        if stats.total_seconds < self.threshold_s:
            return None
        entry = SlowQuery(query_text=query_text, s=s, stats=stats,
                          unix_time=self._wall_clock())
        self._entries.append(entry)
        return entry

    def entries(self) -> list[SlowQuery]:
        """Oldest-first list of the retained slow queries."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._entries.maxlen or 0

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SlowQueryLog {len(self)}/{self.capacity} "
                f"threshold={self.threshold_s}s>")
