"""Resilience suite: recovering ingestion, budgeted serving, durable
storage — all driven by the deterministic injectors in
:mod:`repro.testing.faults`.

Covers the acceptance criteria of the resilience issue:

* corrupted corpora build in ``skip_document`` mode with an exact
  quarantine, and search over the survivors stays correct;
* a tripped :class:`SearchBudget` degrades gracefully (``degraded=True``
  plus a populated :class:`DegradationReport`) instead of raising, unless
  ``strict_deadline=True`` asks for :class:`SearchTimeout`;
* a torn index write can never be loaded partially — ``load_index``
  raises :class:`StorageError` with the ``truncated`` diagnosis.
"""

from __future__ import annotations

import gzip
import json
import zlib

import pytest

from repro.cli import main
from repro.core.budget import DegradationReport, SearchBudget
from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.core.search import search
from repro.core.topk import search_top_k
from repro.errors import (DocumentLoadError, SearchTimeout, StorageError,
                          XMLSyntaxError)
from repro.index.builder import build_index
from repro.index.storage import check_index, load_index, save_index
from repro.testing.faults import (FakeClock, TornWriter, XMLCorruptor,
                                  corrupt_corpus)
from repro.xmltree.parser import (RecoveryPolicy, SalvageLog, iter_events,
                                  parse_document)
from repro.xmltree.repository import Repository

pytestmark = pytest.mark.resilience


def make_corpus(count: int = 50) -> list[str]:
    """A small library corpus; each document carries a unique token."""
    return [
        f"<book><title>alpha beta entry{i}</title>"
        f"<author>karen</author><year>{2000 + i % 10}</year></book>"
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Recovering parser
# ----------------------------------------------------------------------
class TestSalvageParser:
    def test_policy_coercion(self):
        assert RecoveryPolicy.coerce("salvage") is RecoveryPolicy.SALVAGE
        assert RecoveryPolicy.coerce(RecoveryPolicy.STRICT) is \
            RecoveryPolicy.STRICT
        with pytest.raises(ValueError):
            RecoveryPolicy.coerce("lenient")

    def test_unclosed_child_closed_by_parent(self):
        doc = parse_document("<a><b>hello</a>", policy="salvage")
        child = doc.root.children[0]
        assert child.tag == "b" and child.text == "hello"

    def test_stray_closing_tag_dropped(self):
        log = SalvageLog()
        doc = parse_document("<a>text</b> more</a>", policy="salvage",
                             salvage_log=log)
        assert doc.root.tag == "a"
        assert len(log) == 1
        assert "stray closing tag" in str(log.problems[0])

    def test_truncated_document_auto_closed(self):
        log = SalvageLog()
        doc = parse_document("<a><b>trunc", policy="salvage",
                             salvage_log=log)
        assert [node.tag for node in doc.root.iter_subtree()] == ["a", "b"]
        assert any("auto-closed" in str(problem) for problem in log)

    def test_extra_root_skipped(self):
        log = SalvageLog()
        doc = parse_document("<a>one</a><z>two</z>", policy="salvage",
                             salvage_log=log)
        assert doc.root.tag == "a"
        assert any("extra root" in str(problem) for problem in log)

    def test_unknown_entity_kept_literally(self):
        doc = parse_document("<a>bad &entity; here</a>", policy="salvage")
        assert doc.root.text == "bad &entity; here"

    def test_unsalvageable_still_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("no markup at all", policy="salvage")

    def test_strict_unchanged(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a><b>hello</a>", policy="strict")

    def test_salvaged_corpus_is_searchable(self):
        texts, victims = corrupt_corpus(make_corpus(20), 0.25, seed=3)
        repository = Repository.from_texts(texts, policy="salvage")
        # salvage keeps strictly more documents than skip_document
        assert len(repository) + len(repository.quarantine) == 20
        assert len(repository) >= 20 - len(victims)
        engine = GKSEngine(repository)
        assert engine.search("karen").nodes


class TestSyntaxErrorPositions:
    def test_offset_attribute(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(iter_events("<a>\n</b>"))
        error = excinfo.value
        assert isinstance(error.offset, int)
        assert error.line == 2
        # args[0] is the bare message: position only rendered by __str__
        assert "line" not in error.args[0]
        assert f"line {error.line}" in str(error)
        assert f"offset {error.offset}" in str(error)


# ----------------------------------------------------------------------
# Quarantined ingestion
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_corrupted_corpus_builds_with_exact_quarantine(self):
        texts, victims = corrupt_corpus(make_corpus(50), 0.20, seed=7)
        assert len(victims) == 10
        repository = Repository.from_texts(texts, policy="skip_document")

        assert len(repository) == 40
        quarantined = {failure.name for failure in repository.quarantine}
        assert quarantined == {f"text[{i}]" for i in victims}
        for failure in repository.quarantine:
            assert isinstance(failure.error, XMLSyntaxError)
            assert failure.render()

    def test_search_over_survivors_is_correct(self):
        texts, victims = corrupt_corpus(make_corpus(50), 0.20, seed=7)
        repository = Repository.from_texts(texts, policy="skip_document")
        engine = GKSEngine(repository)

        survivors = [i for i in range(50) if i not in victims]
        # every surviving document's unique token is findable, exactly once
        for original in survivors[:5]:
            response = engine.search(f"entry{original}")
            assert len(response) == 1
        # the broad query reaches every surviving document
        response = engine.search("karen")
        documents = {node.dewey[0] for node in response}
        assert documents == set(range(40))

    def test_strict_mode_still_aborts(self):
        texts, _ = corrupt_corpus(make_corpus(10), 0.3, seed=1)
        with pytest.raises(XMLSyntaxError):
            Repository.from_texts(texts)

    def test_from_paths_wraps_read_errors(self, tmp_path):
        missing = tmp_path / "nope.xml"
        with pytest.raises(DocumentLoadError) as excinfo:
            Repository.from_paths([missing])
        assert "nope.xml" in str(excinfo.value)
        assert excinfo.value.path == missing

    def test_from_paths_undecodable_file(self, tmp_path):
        bad = tmp_path / "latin.xml"
        bad.write_bytes("<r>caf\xe9</r>".encode("latin-1"))
        with pytest.raises(DocumentLoadError):
            Repository.from_paths([bad])

    def test_from_paths_quarantines_under_skip(self, tmp_path):
        good = tmp_path / "good.xml"
        good.write_text("<r><a>karen</a></r>")
        bad = tmp_path / "bad.xml"
        bad.write_text("<r><a>broken</r>")
        missing = tmp_path / "gone.xml"
        repository = Repository.from_paths([good, bad, missing],
                                           policy="skip_document")
        assert len(repository) == 1
        names = {failure.name for failure in repository.quarantine}
        assert names == {"bad.xml", "gone.xml"}


# ----------------------------------------------------------------------
# Search budgets & graceful degradation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def library_index():
    return build_index(Repository.from_texts(make_corpus(40)))


class TestSearchBudget:
    def test_unbudgeted_response_not_degraded(self, library_index):
        response = search(library_index, Query.of(["karen"]))
        assert response.degraded is False
        assert response.degradation is None

    def test_max_sl_degrades_at_merge(self, library_index):
        budget = SearchBudget(max_sl=5)
        response = search(library_index, Query.of(["karen"]), budget=budget)
        assert response.degraded is True
        report = response.degradation
        assert isinstance(report, DegradationReport)
        assert report.stage == "merge"
        assert report.reason == "max_sl"
        assert report.processed == 5
        assert report.total == 40
        assert response.profile.merged_list_size == 5
        assert response.nodes  # partial answer, not an empty one
        assert "degraded" in report.render()

    def test_deadline_trips_mid_pipeline_without_sleeping(
            self, library_index):
        clock = FakeClock(auto_advance=1.0)
        budget = SearchBudget(deadline_s=2.5, clock=clock)
        response = search(library_index, Query.of(["karen"]), budget=budget)
        assert response.degraded is True
        report = response.degradation
        assert report.reason == "deadline"
        assert report.stage in {"merge", "lcp", "lce", "rank"}
        assert report.elapsed_s > 2.5
        assert clock.calls > 1  # the budget really polled the fake clock

    def test_degraded_response_keeps_discovered_nodes(self, library_index):
        # a clock that jumps past the deadline partway through the LCE
        # stage: merge + the ~40 lcp blocks poll first, then lce entries
        calls = {"count": 0}

        def clock() -> float:
            calls["count"] += 1
            return 0.0 if calls["count"] < 60 else 100.0

        budget = SearchBudget(deadline_s=1.0, clock=clock, recovery_k=7)
        response = search(library_index, Query.of(["karen"]), budget=budget)
        assert response.degraded is True
        assert response.degradation.stage == "lce"
        assert 0 < len(response) <= 7

    def test_max_nodes_caps_ranking(self, library_index):
        budget = SearchBudget(max_nodes=3)
        response = search(library_index, Query.of(["karen"]), budget=budget)
        assert response.degraded is True
        assert response.degradation.stage == "rank"
        assert response.degradation.reason == "max_nodes"
        assert len(response) == 3

    def test_budget_restarts_cleanly(self, library_index):
        budget = SearchBudget(max_nodes=3)
        first = search(library_index, Query.of(["karen"]), budget=budget)
        second = search(library_index, Query.of(["alpha"]), budget=budget)
        assert first.degraded and second.degraded
        assert second.degradation.stage == "rank"

    def test_topk_under_budget(self, library_index):
        budget = SearchBudget(max_sl=5)
        response = search_top_k(library_index, Query.of(["karen"]), k=3,
                                budget=budget)
        assert response.degraded is True
        assert response.degradation.stage == "merge"
        assert len(response) <= 3

    def test_invalid_budget_parameters(self):
        with pytest.raises(ValueError):
            SearchBudget(deadline_s=-1)
        with pytest.raises(ValueError):
            SearchBudget(max_sl=0)
        with pytest.raises(ValueError):
            SearchBudget(max_nodes=0)


class TestEngineBudget:
    def test_engine_search_degrades(self):
        engine = GKSEngine.open(make_corpus(30))
        budget = SearchBudget(max_sl=4)
        response = engine.search("karen", budget=budget)
        assert response.degraded is True

    def test_strict_deadline_raises_timeout(self):
        engine = GKSEngine.open(make_corpus(30))
        clock = FakeClock(auto_advance=1.0)
        budget = SearchBudget(deadline_s=0.5, clock=clock)
        with pytest.raises(SearchTimeout) as excinfo:
            engine.search("karen", budget=budget, strict_deadline=True)
        assert excinfo.value.report is not None
        assert excinfo.value.report.reason == "deadline"

    def test_strict_deadline_tolerates_resource_caps(self):
        engine = GKSEngine.open(make_corpus(30))
        response = engine.search("karen", budget=SearchBudget(max_sl=4),
                                 strict_deadline=True)
        assert response.degraded is True  # max_sl degrades, never raises

    def test_degraded_responses_bypass_cache(self):
        engine = GKSEngine.open(make_corpus(30))
        degraded = engine.search("karen", budget=SearchBudget(max_sl=4))
        full = engine.search("karen")
        assert degraded.degraded and not full.degraded
        assert len(full) > len(degraded)


class TestEngineCacheLRU:
    def test_hit_refreshes_recency(self):
        engine = GKSEngine.open(make_corpus(10))
        engine._cache_size = 2
        first = engine.search("entry1")
        engine.search("entry2")
        # hit (shared nodes, no recompute); refreshes recency
        assert engine.search("entry1").nodes is first.nodes
        engine.search("entry3")                  # evicts entry2, not entry1
        assert engine.search("entry1").nodes is first.nodes
        keys = {key[0] for key in engine._response_cache}
        assert ("entry2",) not in keys

    def test_distinct_rankers_cached_separately(self):
        from repro.core.ranking import rank_by_keyword_count, rank_node

        engine = GKSEngine.open(make_corpus(5))
        by_flow = engine.search("karen", ranker=rank_node)
        by_count = engine.search("karen", ranker=rank_by_keyword_count)
        assert engine.search("karen", ranker=rank_node).nodes \
            is by_flow.nodes
        assert engine.search(
            "karen", ranker=rank_by_keyword_count).nodes is by_count.nodes


# ----------------------------------------------------------------------
# Durable storage
# ----------------------------------------------------------------------
@pytest.fixture()
def saved_index(tmp_path):
    index = build_index(Repository.from_texts(make_corpus(8)))
    return index, save_index(index, tmp_path / "idx.gz")


class TestAtomicStorage:
    def test_no_temp_file_left_behind(self, saved_index, tmp_path):
        _, path = saved_index
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_round_trip_verifies_checksum(self, saved_index):
        index, path = saved_index
        loaded = load_index(path)
        assert dict(loaded.inverted.items()) == dict(index.inverted.items())

    def test_torn_write_never_loads_partially(self, saved_index):
        _, path = saved_index
        TornWriter(seed=5).tear(path, fraction=0.5)
        with pytest.raises(StorageError) as excinfo:
            load_index(path)
        assert excinfo.value.diagnosis == "truncated"

    def test_random_tear_points_all_fail_closed(self, saved_index,
                                                tmp_path):
        _, path = saved_index
        writer = TornWriter(seed=11)
        for round_no in range(8):
            torn = writer.torn_copy(path, tmp_path / f"torn{round_no}.gz")
            with pytest.raises(StorageError) as excinfo:
                load_index(torn)
            assert excinfo.value.diagnosis in {"truncated", "corrupted"}

    def test_checksum_mismatch_diagnosed_corrupted(self, saved_index):
        _, path = saved_index
        with gzip.open(path, "rt") as handle:
            envelope = json.load(handle)
        envelope["payload"]["document_names"] = ["tampered"]
        with gzip.open(path, "wt") as handle:
            json.dump(envelope, handle)
        with pytest.raises(StorageError) as excinfo:
            load_index(path)
        assert excinfo.value.diagnosis == "corrupted"
        assert "checksum" in str(excinfo.value)

    def test_unknown_version_diagnosed(self, saved_index):
        _, path = saved_index
        with gzip.open(path, "rt") as handle:
            envelope = json.load(handle)
        envelope["version"] = 99
        with gzip.open(path, "wt") as handle:
            json.dump(envelope, handle)
        with pytest.raises(StorageError) as excinfo:
            load_index(path)
        assert excinfo.value.diagnosis == "version-mismatch"

    def test_unwritable_path_diagnosed(self, saved_index, tmp_path):
        index, _ = saved_index
        with pytest.raises(StorageError) as excinfo:
            save_index(index, tmp_path / "no" / "dir" / "x.gz")
        assert excinfo.value.diagnosis == "unwritable"

    def test_legacy_v1_file_still_loads(self, saved_index, tmp_path):
        index, path = saved_index
        with gzip.open(path, "rt") as handle:
            payload = json.load(handle)["payload"]
        payload["version"] = 1  # v1 kept everything at top level
        legacy = tmp_path / "legacy.gz"
        with gzip.open(legacy, "wt") as handle:
            json.dump(payload, handle)
        loaded = load_index(legacy)
        assert dict(loaded.inverted.items()) == dict(index.inverted.items())

    def test_crc_survives_key_order(self, saved_index, tmp_path):
        # reserializing with a different key order must not fail the CRC
        _, path = saved_index
        with gzip.open(path, "rt") as handle:
            envelope = json.load(handle)
        envelope["payload"] = dict(reversed(envelope["payload"].items()))
        with gzip.open(path, "wt") as handle:
            json.dump(envelope, handle)
        load_index(path)  # canonical serialization: no StorageError


class TestIndexHealth:
    def test_check_index_healthy(self, saved_index):
        _, path = saved_index
        summary = check_index(path)
        assert summary["ok"] is True
        assert summary["documents"] == 8
        assert summary["postings"] > 0

    def test_check_index_torn(self, saved_index):
        _, path = saved_index
        TornWriter(seed=2).tear(path, fraction=0.5)
        summary = check_index(path)
        assert summary["ok"] is False
        assert summary["diagnosis"] == "truncated"

    def test_check_index_missing(self, tmp_path):
        summary = check_index(tmp_path / "ghost.gz")
        assert summary["ok"] is False
        assert summary["diagnosis"] == "unreadable"

    def test_cli_check_index(self, saved_index, capsys):
        _, path = saved_index
        assert main(["check-index", str(path)]) == 0
        assert "index OK" in capsys.readouterr().out

    def test_cli_check_index_flag_form(self, saved_index, capsys):
        _, path = saved_index
        TornWriter(seed=3).tear(path, fraction=0.5)
        assert main(["--check-index", str(path)]) == 1
        out = capsys.readouterr().out
        assert "index BAD" in out
        assert "truncated" in out


class TestEngineIndexCache:
    def _write_corpus(self, tmp_path, count=6):
        paths = []
        for position, text in enumerate(make_corpus(count)):
            path = tmp_path / f"doc{position}.xml"
            path.write_text(text)
            paths.append(path)
        return paths

    def test_cold_cache_written(self, tmp_path):
        paths = self._write_corpus(tmp_path)
        cache = tmp_path / "corpus.idx.gz"
        engine = GKSEngine.open(paths, index_path=cache)
        assert cache.exists()
        assert check_index(cache)["ok"]
        assert engine.search("karen").nodes

    def test_warm_cache_used(self, tmp_path):
        paths = self._write_corpus(tmp_path)
        cache = tmp_path / "corpus.idx.gz"
        GKSEngine.open(paths, index_path=cache)
        stamp = cache.stat().st_mtime_ns
        engine = GKSEngine.open(paths, index_path=cache)
        assert cache.stat().st_mtime_ns == stamp  # not rewritten
        assert engine.search("entry2").nodes

    def test_torn_cache_rebuilt_and_rewritten(self, tmp_path):
        paths = self._write_corpus(tmp_path)
        cache = tmp_path / "corpus.idx.gz"
        reference = GKSEngine.open(paths, index_path=cache)
        TornWriter(seed=9).tear(cache, fraction=0.5)
        assert check_index(cache)["ok"] is False
        engine = GKSEngine.open(paths, index_path=cache)
        assert check_index(cache)["ok"] is True  # rewritten atomically
        assert engine.search("karen").deweys == \
            reference.search("karen").deweys


# ----------------------------------------------------------------------
# Injector determinism
# ----------------------------------------------------------------------
class TestInjectors:
    def test_corruptor_is_deterministic(self):
        texts = make_corpus(12)
        first = [XMLCorruptor(seed=4).corrupt(text) for text in texts]
        second = [XMLCorruptor(seed=4).corrupt(text) for text in texts]
        assert first == second

    def test_corruptions_always_malformed(self):
        corruptor = XMLCorruptor(seed=13)
        for text in make_corpus(30):
            mutated = corruptor.corrupt(text)
            with pytest.raises(XMLSyntaxError):
                list(iter_events(mutated))

    def test_corrupt_corpus_fraction(self):
        mutated, victims = corrupt_corpus(make_corpus(50), 0.2, seed=21)
        assert len(victims) == 10
        for position, text in enumerate(mutated):
            assert (text != make_corpus(50)[position]) == \
                (position in victims)

    def test_fake_clock_auto_advance(self):
        clock = FakeClock(start=5.0, auto_advance=0.5)
        assert clock() == 5.0
        assert clock() == 5.5
        clock.advance(10)
        assert clock() == 16.0
        assert clock.calls == 3
