"""Indexing engine: node categorization, inverted index, hash tables."""

from repro.index.builder import GKSIndex, IndexBuilder, build_index
from repro.index.categorize import (CategoryRecord, NodeCategory,
                                    StreamingCategorizer, categorize_tree,
                                    iter_categories)
from repro.index.hashtables import NodeHashes
from repro.index.incremental import append_document, remove_last_document
from repro.index.inverted import InvertedIndex
from repro.index.postings import (MergedEntry, count_in_subtree,
                                  merge_posting_lists, subtree_range)
from repro.index.sharding import (ParallelIndexBuilder, Shard, ShardedIndex,
                                  build_sharded_index, partition_documents,
                                  shard_of)
from repro.index.statistics import IndexStats
from repro.index.storage import (index_size_bytes, load_index, save_index)

__all__ = [
    "CategoryRecord", "GKSIndex", "IndexBuilder", "IndexStats",
    "InvertedIndex", "MergedEntry", "NodeCategory", "NodeHashes",
    "ParallelIndexBuilder", "Shard", "ShardedIndex",
    "StreamingCategorizer", "append_document", "build_index",
    "build_sharded_index", "categorize_tree", "count_in_subtree",
    "index_size_bytes", "iter_categories", "load_index",
    "merge_posting_lists", "partition_documents", "remove_last_document",
    "save_index", "shard_of", "subtree_range",
]
