"""Index persistence (paper §2.4: "Creating the index is a onetime
activity").

An index is written as a single gzip-compressed JSON file.  Dewey ids are
stored in the paper's dotted notation; posting lists stay sorted on disk so
loading needs no re-sort (a checksum of sortedness is verified on load).
The format is versioned; loading an unknown version fails loudly rather
than guessing.

Durability (format version 2)
-----------------------------
``save_index`` is atomic: the gzip payload is written to a temporary file
in the target directory, fsynced, and renamed over the destination —
a crash mid-write can never leave a truncated index under the final name.
The envelope embeds a CRC32 of the canonical payload serialization;
``load_index`` verifies it and raises :class:`StorageError` with a
machine-readable ``diagnosis`` — ``"truncated"`` (the gzip stream ends
early, e.g. a torn write of the temp-file-less v1 era), ``"corrupted"``
(bad gzip/JSON bytes or checksum mismatch) or ``"version-mismatch"``.
Version-1 files (no checksum) still load.

Sharded indexes (format version 3)
----------------------------------
A :class:`~repro.index.sharding.ShardedIndex` is stored as a *shard
manifest* — partitioning strategy, global document names, analyzer
settings and one CRC32 per shard — plus the per-shard payloads, all in
the same single atomic gzip file.  The manifest carries its own CRC32
(computed over the manifest including the per-shard CRCs), so a flipped
bit in any shard payload or in the manifest itself is detected on load
and the file is rejected whole.

Table 4's "Index Size" column is measured with :func:`index_size_bytes`.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from pathlib import Path

from repro.errors import StorageError
from repro.index.builder import GKSIndex
from repro.obs.metrics import global_registry
from repro.index.hashtables import NodeHashes
from repro.index.inverted import InvertedIndex
from repro.index.probtables import ProbTables
from repro.index.sharding import Shard, ShardedIndex
from repro.index.statistics import IndexStats
from repro.text.analyzer import Analyzer
from repro.xmltree.dewey import format_dewey, parse_dewey

FORMAT_VERSION = 2
FORMAT_VERSION_SHARDED = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def _payload_dict(index: GKSIndex) -> dict:
    payload = {
        "analyzer": {
            "use_stopwords": index.analyzer.use_stopwords,
            "use_stemming": index.analyzer.use_stemming,
        },
        "document_names": list(index.document_names),
        "stats": index.stats.to_dict(),
        "entity_hash": {format_dewey(dewey): count
                        for dewey, count in index.hashes.entity_table.items()},
        "element_hash": {format_dewey(dewey): count
                         for dewey, count
                         in index.hashes.element_table.items()},
        "postings": {keyword: [format_dewey(dewey) for dewey in posting_list]
                     for keyword, posting_list in index.inverted.items()},
    }
    # Conditional key: a strict index's payload (and its CRC32) stays
    # byte-identical to the pre-probabilistic format.
    if isinstance(index.probabilities, ProbTables) and index.probabilities:
        payload["probabilities"] = index.probabilities.to_dict()
    return payload


def _canonical(payload: dict) -> str:
    """The byte-stable serialization the CRC32 is computed over."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def payload_crc32(payload: dict) -> int:
    """CRC32 of the canonical serialization of *payload*.

    Public so the deep invariant verifier
    (:mod:`repro.analysis.invariants`) and the fault injectors
    (:class:`repro.testing.faults.IndexCorruptor`) compute byte-identical
    checksums to the ones embedded at save time.
    """
    return zlib.crc32(_canonical(payload).encode("utf-8")) & 0xFFFFFFFF


_crc = payload_crc32


def atomic_write_json_gz(envelope: dict, path: str | Path) -> Path:
    """Write *envelope* as gzip + compact JSON, atomically.

    The shared durability primitive of every on-disk artefact: the bytes
    go to a temporary file in the target directory, are fsynced, and the
    temp file is renamed over the destination — a crash mid-write can
    never leave a truncated file under the final name.  ``mtime=0``
    keeps the gzip bytes deterministic so file-level CRCs are stable.
    Raises :class:`StorageError` (``diagnosis="unwritable"``) on any OS
    failure; the temp file is cleaned up best-effort.
    """
    path = Path(path)
    temp_path = path.with_name(path.name + ".tmp")
    try:
        with open(temp_path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as handle:
                handle.write(
                    json.dumps(envelope, separators=(",", ":"))
                    .encode("utf-8"))
            raw.flush()
            os.fsync(raw.fileno())
        os.replace(temp_path, path)
    except OSError as exc:
        try:
            temp_path.unlink()
        except OSError:
            pass
        raise StorageError(f"cannot write {path}: {exc}",
                           diagnosis="unwritable", path=path) from exc
    return path


def _sharded_envelope(index: ShardedIndex) -> dict:
    """The v3 envelope: shard manifest (with per-shard CRCs) + payloads."""
    payloads = [_payload_dict(shard.index) for shard in index.shards]
    manifest = {
        "strategy": index.strategy,
        "document_names": list(index.document_names),
        "analyzer": {
            "use_stopwords": index.analyzer.use_stopwords,
            "use_stemming": index.analyzer.use_stemming,
        },
        "shards": [{
            "shard_id": shard.shard_id,
            "doc_ids": list(shard.doc_ids),
            "crc32": _crc(payload),
        } for shard, payload in zip(index.shards, payloads)],
    }
    return {
        "version": FORMAT_VERSION_SHARDED,
        "crc32": _crc(manifest),
        "manifest": manifest,
        "shards": payloads,
    }


def save_index(index: GKSIndex | ShardedIndex, path: str | Path,
               codec: str = "raw") -> Path:
    """Write *index* to *path* atomically (temp file + fsync + rename).

    ``codec`` picks the on-disk representation: ``"raw"`` (default)
    writes the JSON envelope formats — v2 for a plain
    :class:`GKSIndex`, v3 (shard manifest + per-shard CRCs) for a
    :class:`ShardedIndex` — while ``"varint-dag"`` writes the v4
    binary format (:mod:`repro.index.codec`: delta+varint posting
    blocks, DAG-shared subtrees, lazy loading).  Every format embeds
    CRC32 checksums so :func:`load_index` can distinguish a clean file
    from silent corruption.  Unknown codec names raise
    :class:`~repro.errors.ConfigError`.  Returns the path written.
    """
    path = Path(path)
    if codec == "raw":
        if isinstance(index, ShardedIndex):
            envelope = _sharded_envelope(index)
        else:
            payload = _payload_dict(index)
            envelope = {
                "version": FORMAT_VERSION,
                "crc32": _crc(payload),
                "payload": payload,
            }
        atomic_write_json_gz(envelope, path)
    else:
        from repro.index.codec import resolve_codec

        resolve_codec(codec).save(index, path)
    registry = global_registry()
    registry.counter("gks_index_saves_total",
                     help="Indexes persisted to disk.").inc()
    registry.gauge("gks_index_file_bytes",
                   help="On-disk size of the most recently saved index."
                   ).set(path.stat().st_size)
    return path


def load_index(path: str | Path) -> GKSIndex | ShardedIndex:
    """Read an index previously written by :func:`save_index`.

    Returns a :class:`ShardedIndex` for v3 files and a plain
    :class:`GKSIndex` otherwise.  Raises :class:`StorageError` carrying
    a ``diagnosis`` naming the failure class (truncated / corrupted /
    version-mismatch / unreadable); a verified index is returned whole
    or not at all — a torn write can never yield a partially-read index,
    and a corrupted shard payload rejects the whole file.
    """
    registry = global_registry()
    try:
        index = _load_index(path)
    except StorageError as exc:
        registry.counter(
            "gks_index_load_failures_total",
            help="Index loads rejected, by failure diagnosis."
        ).inc(labels={"diagnosis": exc.diagnosis or "unknown"})
        raise
    registry.counter("gks_index_loads_total",
                     help="Indexes loaded from disk.").inc()
    return index


def read_envelope(path: str | Path) -> dict:
    """Read the raw persisted envelope without rebuilding the index.

    This is the *unrepaired* on-disk view: posting lists come back in
    exactly the stored order (``load_index`` re-sorts them through
    :meth:`InvertedIndex.from_mapping`, which hides on-disk corruption
    the CRC alone cannot prove intentional).  The deep invariant
    verifier audits this raw form.  Raises :class:`StorageError` with
    the usual ``diagnosis`` for unreadable/truncated/corrupted files
    and unknown format versions.
    """
    path = Path(path)
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except EOFError as exc:
        # the gzip stream ends before its trailer: a torn/partial write
        raise StorageError(
            f"cannot read index from {path}: file is truncated ({exc})",
            diagnosis="truncated", path=path) from exc
    except (gzip.BadGzipFile, json.JSONDecodeError, UnicodeDecodeError,
            zlib.error) as exc:
        raise StorageError(
            f"cannot read index from {path}: file is corrupted ({exc})",
            diagnosis="corrupted", path=path) from exc
    except OSError as exc:
        raise StorageError(f"cannot read index from {path}: {exc}",
                           diagnosis="unreadable", path=path) from exc

    if not isinstance(envelope, dict):
        raise StorageError(f"cannot read index from {path}: not an index "
                           f"envelope", diagnosis="corrupted", path=path)
    version = envelope.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise StorageError(
            f"unsupported index format version {version!r} in {path}",
            diagnosis="version-mismatch", path=path)
    return envelope


def write_envelope(envelope: dict, path: str | Path) -> Path:
    """Write a raw *envelope* back to *path* (gzip + compact JSON).

    The inverse of :func:`read_envelope`, for tools that edit the
    persisted form directly — chiefly the fault injector
    (:class:`repro.testing.faults.IndexCorruptor`), which mutates a
    payload and recomputes its CRCs so the file stays *structurally*
    clean while violating a deep invariant.  No atomicity: this is a
    test/diagnostic surface, not the durability path (`save_index`).
    """
    path = Path(path)
    try:
        with open(path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as handle:
                handle.write(json.dumps(envelope, separators=(",", ":"))
                             .encode("utf-8"))
    except OSError as exc:
        raise StorageError(f"cannot write index to {path}: {exc}",
                           diagnosis="unwritable", path=path) from exc
    return path


def _load_index(path: str | Path) -> GKSIndex | ShardedIndex:
    path = Path(path)
    from repro.index.codec import is_binary_index, load_binary_index

    if is_binary_index(path):
        return load_binary_index(path)
    envelope = read_envelope(path)
    version = envelope.get("version")

    if version == FORMAT_VERSION_SHARDED:
        return _sharded_from_envelope(envelope, path)

    if version == 1:
        payload = envelope  # v1 stored the payload fields at top level
    else:
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            raise StorageError(
                f"cannot read index from {path}: envelope has no payload",
                diagnosis="corrupted", path=path)
        expected_crc = envelope.get("crc32")
        actual_crc = (zlib.crc32(_canonical(payload).encode("utf-8"))
                      & 0xFFFFFFFF)
        if expected_crc != actual_crc:
            raise StorageError(
                f"checksum mismatch in {path}: stored crc32 "
                f"{expected_crc!r}, computed {actual_crc:#010x} — the "
                f"file is corrupted", diagnosis="corrupted", path=path)

    return _index_from_payload(payload, path)


def _index_from_payload(payload: dict, path: Path) -> GKSIndex:
    try:
        inverted = InvertedIndex.from_mapping({
            keyword: [parse_dewey(text) for text in posting_list]
            for keyword, posting_list in payload["postings"].items()})
    except KeyError as exc:
        raise StorageError(f"cannot read index from {path}: missing "
                           f"section {exc}", diagnosis="corrupted",
                           path=path) from exc
    if not inverted.check_integrity():
        raise StorageError(f"corrupt posting lists in {path}",
                           diagnosis="corrupted", path=path)

    hashes = NodeHashes.from_mappings(
        entity={parse_dewey(text): count
                for text, count in payload["entity_hash"].items()},
        element={parse_dewey(text): count
                 for text, count in payload["element_hash"].items()})

    analyzer_config = payload.get("analyzer", {})
    analyzer = Analyzer(
        use_stopwords=analyzer_config.get("use_stopwords", True),
        use_stemming=analyzer_config.get("use_stemming", True))

    probabilities = None
    raw_tables = payload.get("probabilities")
    if raw_tables is not None:
        try:
            probabilities = ProbTables.from_dict(raw_tables)
        except Exception as exc:
            raise StorageError(
                f"cannot read index from {path}: malformed probability "
                f"tables ({exc})", diagnosis="corrupted",
                path=path) from exc

    return GKSIndex(
        inverted=inverted, hashes=hashes,
        stats=IndexStats.from_dict(payload.get("stats", {})),
        analyzer=analyzer,
        document_names=tuple(payload.get("document_names", ())),
        probabilities=probabilities)


def _sharded_from_envelope(envelope: dict, path: Path) -> ShardedIndex:
    """Verify and rebuild a v3 sharded index (manifest CRC first)."""
    manifest = envelope.get("manifest")
    payloads = envelope.get("shards")
    if not isinstance(manifest, dict) or not isinstance(payloads, list):
        raise StorageError(
            f"cannot read index from {path}: sharded envelope has no "
            f"manifest/shards", diagnosis="corrupted", path=path)
    if envelope.get("crc32") != _crc(manifest):
        raise StorageError(
            f"shard manifest checksum mismatch in {path} — the file is "
            f"corrupted", diagnosis="corrupted", path=path)
    entries = manifest.get("shards", [])
    if len(entries) != len(payloads) or not entries:
        raise StorageError(
            f"cannot read index from {path}: manifest lists "
            f"{len(entries)} shards but {len(payloads)} payloads are "
            f"present", diagnosis="corrupted", path=path)

    shards = []
    for entry, payload in zip(entries, payloads):
        if entry.get("crc32") != _crc(payload):
            raise StorageError(
                f"checksum mismatch for shard {entry.get('shard_id')!r} "
                f"in {path} — the file is corrupted",
                diagnosis="corrupted", path=path)
        shards.append(Shard(shard_id=int(entry["shard_id"]),
                            doc_ids=tuple(entry.get("doc_ids", ())),
                            index=_index_from_payload(payload, path)))

    analyzer_config = manifest.get("analyzer", {})
    analyzer = Analyzer(
        use_stopwords=analyzer_config.get("use_stopwords", True),
        use_stemming=analyzer_config.get("use_stemming", True))
    strategy = manifest.get("strategy", "round_robin")
    try:
        return ShardedIndex(shards, strategy=strategy,
                            document_names=tuple(
                                manifest.get("document_names", ())),
                            analyzer=analyzer)
    except Exception as exc:  # e.g. an unknown strategy string
        raise StorageError(
            f"cannot read index from {path}: invalid shard manifest "
            f"({exc})", diagnosis="corrupted", path=path) from exc


def describe_layout(path: str | Path) -> dict:
    """Describe how an index is persisted: version / codec / layout.

    Accepts every form ``check-index`` does — JSON envelopes (v1–v3),
    v4 binary codec files, and segmented store directories (given the
    directory or its ``MANIFEST``).  Returns a mapping with stable
    keys: ``version`` (storage format version), ``codec`` (``"raw"``
    for the JSON envelopes, the header's codec name for binary files),
    ``layout`` (``"monolithic"`` / ``"sharded"`` / ``"store"``) and
    ``shards``.  Store directories additionally report ``segments``
    and ``generation``.  Raises :class:`StorageError` when the target
    cannot be read or parsed.
    """
    path = Path(path)
    if path.is_dir() or path.name == "MANIFEST":
        from repro.index.segments import MANIFEST_VERSION, read_manifest

        directory = path if path.is_dir() else path.parent
        manifest = read_manifest(directory)
        return {"version": MANIFEST_VERSION, "codec": "raw",
                "layout": "store", "shards": manifest.shards,
                "segments": len(manifest.segments),
                "generation": manifest.generation,
                "mode": "strict"}
    from repro.index.codec import is_binary_index, read_binary_header

    if is_binary_index(path):
        header = read_binary_header(path)
        body = header.get("body", {})
        probabilistic = bool(body.get("probabilities")) or any(
            shard.get("probabilities")
            for shard in body.get("shards", []))
        return {"version": header.get("version"),
                "codec": header.get("codec"),
                "layout": body.get("layout", "monolithic"),
                "shards": len(body.get("shards", [])),
                "mode": "probabilistic" if probabilistic else "strict"}
    envelope = read_envelope(path)
    version = envelope.get("version")
    if version == FORMAT_VERSION_SHARDED:
        payloads = envelope.get("shards") or []
        shards = len(payloads)
        layout = "sharded"
        probabilistic = any(isinstance(payload, dict)
                            and payload.get("probabilities")
                            for payload in payloads)
    else:
        shards, layout = 1, "monolithic"
        payload = envelope.get("payload", envelope)
        probabilistic = bool(isinstance(payload, dict)
                             and payload.get("probabilities"))
    return {"version": version, "codec": "raw", "layout": layout,
            "shards": shards,
            "mode": "probabilistic" if probabilistic else "strict"}


def check_index(path: str | Path) -> dict:
    """Health summary of a persisted index file (``--check-index``).

    Never raises: failures are reported in the returned mapping's
    ``"ok"``/``"diagnosis"``/``"error"`` fields.
    """
    path = Path(path)
    summary: dict = {"path": str(path), "ok": False}
    try:
        summary["size_bytes"] = index_size_bytes(path)
    except OSError as exc:
        summary.update(diagnosis="unreadable", error=str(exc))
        return summary
    try:
        summary.update(describe_layout(path))
    except StorageError:
        pass  # the load below reports the failure with its diagnosis
    # the whole summary stays inside the guard: a lazily loaded v4
    # index can surface a truncated or corrupt region only when its
    # tables are first touched, not at load time
    try:
        index = load_index(path)
        summary.update(
            ok=True,
            documents=len(index.document_names),
            keywords=len(dict(index.inverted.items())),
            postings=sum(len(posting_list)
                         for _, posting_list in index.inverted.items()),
            entity_nodes=len(index.hashes.entity_table),
            element_nodes=len(index.hashes.element_table),
            total_nodes=index.stats.total_nodes)
    except StorageError as exc:
        summary.update(ok=False, diagnosis=exc.diagnosis or "corrupted",
                       error=str(exc))
        return summary
    if isinstance(index, ShardedIndex):
        summary.update(shards=index.num_shards, strategy=index.strategy)
    return summary


def index_size_bytes(path: str | Path) -> int:
    """On-disk size of a saved index (Table 4's "Index Size" column)."""
    return Path(path).stat().st_size
