"""Open- and closed-loop load generation against a :class:`ServerCore`.

The distinction matters (Schroeder et al., "Open Versus Closed"): a
*closed* loop — N workers, each waiting for its response before sending
the next — can never overload the server, because offered load shrinks
as latency grows.  An *open* loop submits on a fixed arrival schedule
regardless of completions, which is how real traffic behaves and the
only way to exercise admission control: when arrival rate exceeds
capacity the queue fills and the broker must shed.

Both modes produce a :class:`LoadReport` with per-request outcomes,
latency percentiles (p50/p95/p99) and shed/coalesce/timeout counts.
Determinism: the arrival schedule is precomputed (uniform spacing, or
exponential gaps from a seeded PRNG for Poisson arrivals), and both the
clock and the sleeper are injectable, so tests replay identical
schedules with a :class:`~repro.testing.faults.FakeClock` and no real
sleeping.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import GKSError, Overloaded, SearchTimeout, \
    ValidationError
from repro.obs.locks import new_lock
from repro.obs.trace import DEFAULT_CLOCK
from repro.serve.core import ServerCore


@dataclass(frozen=True)
class LoadRequest:
    """One scheduled arrival: when, and what to ask."""

    at_s: float
    query: str
    s: int | None = None
    k: int | None = None
    deadline_s: float | None = None


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one scheduled request.

    ``outcome`` is ``"ok"``, ``"shed"``, ``"timeout"`` or ``"error"``;
    ``latency_s`` is arrival-to-completion for accepted requests and
    0.0 for synchronous sheds.  ``attempts`` counts submissions
    including retries after 429 sheds (1 = accepted first try).
    """

    request: LoadRequest
    outcome: str
    latency_s: float = 0.0
    error: str = ""
    attempts: int = 1


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for :class:`Overloaded` sheds.

    A shed request is resubmitted up to ``attempts`` times total.  The
    wait before attempt *n+1* is the server's ``Retry-After`` hint when
    ``honor_retry_after`` is set and the shed carried one, otherwise
    ``backoff_s * multiplier**(n-1)`` (exponential).  Sleeps go through
    the generator's injectable sleeper, so tests retry in virtual time.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    honor_retry_after: bool = True

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValidationError(f"attempts must be >= 1: {self.attempts}")
        if self.backoff_s < 0:
            raise ValidationError(
                f"backoff_s must be >= 0: {self.backoff_s}")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1.0: {self.multiplier}")

    def delay_s(self, attempt: int, retry_after_s: float | None) -> float:
        """Seconds to wait after failed *attempt* (1-based)."""
        if self.honor_retry_after and retry_after_s is not None:
            return retry_after_s
        return self.backoff_s * self.multiplier ** (attempt - 1)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (nearest-rank) of *values*; 0.0 when empty.

    ``q`` is in [0, 100].  Nearest-rank keeps the statistic an actual
    observed latency — no interpolation inventing values nobody saw.
    """
    if not 0 <= q <= 100:
        raise ValidationError(f"percentile q must be in [0, 100]: {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LoadReport:
    """Aggregate results of one load-generation run."""

    outcomes: tuple[RequestOutcome, ...]
    duration_s: float
    mode: str = "open"

    @property
    def submitted(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.outcome == "ok")

    @property
    def shed(self) -> int:
        return sum(1 for o in self.outcomes if o.outcome == "shed")

    @property
    def timeouts(self) -> int:
        return sum(1 for o in self.outcomes if o.outcome == "timeout")

    @property
    def errors(self) -> int:
        return sum(1 for o in self.outcomes if o.outcome == "error")

    @property
    def retries(self) -> int:
        """Resubmissions beyond each request's first attempt."""
        return sum(o.attempts - 1 for o in self.outcomes)

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def latencies(self) -> list[float]:
        """Latencies of completed requests only, in submission order."""
        return [o.latency_s for o in self.outcomes if o.outcome == "ok"]

    def latency_percentiles(self) -> dict[str, float]:
        observed = self.latencies()
        return {"p50": percentile(observed, 50),
                "p95": percentile(observed, 95),
                "p99": percentile(observed, 99)}

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "retries": self.retries,
            "throughput_rps": self.throughput_rps,
            "latency_s": self.latency_percentiles(),
        }

    def render(self) -> str:
        pct = self.latency_percentiles()
        return (f"{self.mode}-loop: {self.completed}/{self.submitted} ok, "
                f"{self.shed} shed, {self.timeouts} timeout, "
                f"{self.errors} error, {self.retries} retries | "
                f"{self.throughput_rps:.1f} rps | "
                f"p50 {pct['p50'] * 1000:.1f}ms "
                f"p95 {pct['p95'] * 1000:.1f}ms "
                f"p99 {pct['p99'] * 1000:.1f}ms")


@dataclass(frozen=True)
class OpenLoopSchedule:
    """A deterministic, precomputed arrival schedule."""

    requests: tuple[LoadRequest, ...] = ()

    @classmethod
    def uniform(cls, rate_rps: float, count: int, queries: Sequence[str],
                **request_kwargs) -> "OpenLoopSchedule":
        """*count* arrivals at exactly ``1/rate_rps`` spacing.

        Queries are taken round-robin from *queries*; extra keyword
        arguments (``s``, ``k``, ``deadline_s``) apply to every request.
        """
        if rate_rps <= 0:
            raise ValidationError(f"rate_rps must be > 0: {rate_rps}")
        if count < 1:
            raise ValidationError(f"count must be >= 1: {count}")
        if not queries:
            raise ValidationError("queries must be non-empty")
        gap = 1.0 / rate_rps
        return cls(tuple(
            LoadRequest(at_s=i * gap, query=queries[i % len(queries)],
                        **request_kwargs)
            for i in range(count)))

    @classmethod
    def poisson(cls, rate_rps: float, count: int, queries: Sequence[str],
                seed: int = 0, **request_kwargs) -> "OpenLoopSchedule":
        """*count* Poisson arrivals (exponential gaps) from a seeded PRNG.

        Same seed, same schedule — byte-for-byte reproducible bursts.
        """
        if rate_rps <= 0:
            raise ValidationError(f"rate_rps must be > 0: {rate_rps}")
        if count < 1:
            raise ValidationError(f"count must be >= 1: {count}")
        if not queries:
            raise ValidationError("queries must be non-empty")
        rng = random.Random(seed)
        at = 0.0
        requests = []
        for i in range(count):
            requests.append(
                LoadRequest(at_s=at, query=queries[i % len(queries)],
                            **request_kwargs))
            at += rng.expovariate(rate_rps)
        return cls(tuple(requests))

    @property
    def duration_s(self) -> float:
        return self.requests[-1].at_s if self.requests else 0.0


class LoadGenerator:
    """Drives a :class:`ServerCore` in open- or closed-loop mode.

    The clock and sleeper are injectable: benchmarks use the real ones,
    deterministic tests pass a :class:`~repro.testing.faults.FakeClock`
    and ``sleeper=fake.advance`` so "waiting" advances virtual time
    instantly.
    """

    def __init__(self, core: ServerCore,
                 clock: Callable[[], float] | None = None,
                 sleeper: Callable[[float], None] | None = None,
                 retry: RetryPolicy | None = None) -> None:
        self.core = core
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        if sleeper is None:
            import time

            sleeper = time.sleep
        self._sleep = sleeper
        self._retry = retry

    def _submit_with_retry(self, request: LoadRequest
                           ) -> tuple[object | None, int, str]:
        """Submit *request*, retrying sheds per the retry policy.

        Returns ``(future, attempts, "")`` on admission or
        ``(None, attempts, shed_reason)`` once the attempts are spent.
        Backoff sleeps run inline through the injected sleeper — an open
        loop's later arrivals shift accordingly, exactly as a real
        retrying client would shift them.
        """
        max_attempts = self._retry.attempts if self._retry else 1
        attempt = 0
        while True:
            attempt += 1
            try:
                future = self.core.submit(
                    request.query, request.s, k=request.k,
                    deadline_s=request.deadline_s)
            except Overloaded as exc:
                if attempt >= max_attempts:
                    return None, attempt, exc.reason
                self._sleep(self._retry.delay_s(attempt, exc.retry_after_s))
            else:
                return future, attempt, ""

    # ------------------------------------------------------------------
    def run_open(self, schedule: OpenLoopSchedule) -> LoadReport:
        """Submit on the schedule regardless of completions.

        Sheds are recorded synchronously.  Accepted requests stamp their
        completion time from a done-callback (on the resolving worker's
        thread) so the recorded latency is submit-to-completion, not
        submit-to-whenever-the-generator-got-around-to-gathering.
        """
        started = self._clock()
        completions: dict[int, float] = {}
        stamp_lock = new_lock("loadgen.stamp")  # guards: completions

        def stamp(future) -> None:
            now = self._clock()
            with stamp_lock:
                completions[id(future)] = now

        slots: list = []  # RequestOutcome (shed) | (request, future, t0)
        for request in schedule.requests:
            now = self._clock()
            delay = request.at_s - (now - started)
            if delay > 0:
                self._sleep(delay)
            submitted_at = self._clock()
            future, attempts, shed_reason = self._submit_with_retry(request)
            if future is None:
                slots.append(RequestOutcome(
                    request, "shed", error=shed_reason, attempts=attempts))
            else:
                future.add_done_callback(stamp)
                slots.append((request, future, submitted_at, attempts))
        resolved = []
        for slot in slots:
            if isinstance(slot, RequestOutcome):
                resolved.append(slot)
                continue
            request, future, submitted_at, attempts = slot
            outcome = self._gather(request, future, attempts=attempts)
            if outcome.outcome == "ok":
                with stamp_lock:
                    completed_at = completions[id(future)]
                outcome = RequestOutcome(
                    request, "ok", latency_s=completed_at - submitted_at,
                    attempts=attempts)
            resolved.append(outcome)
        finished = self._clock()
        return LoadReport(outcomes=tuple(resolved),
                          duration_s=finished - started, mode="open")

    def run_closed(self, queries: Sequence[str], concurrency: int,
                   iterations: int, **request_kwargs) -> LoadReport:
        """N workers, each issuing *iterations* blocking searches."""
        if concurrency < 1:
            raise ValidationError(
                f"concurrency must be >= 1: {concurrency}")
        if iterations < 1:
            raise ValidationError(f"iterations must be >= 1: {iterations}")
        if not queries:
            raise ValidationError("queries must be non-empty")
        per_worker: list[list[RequestOutcome]] = \
            [[] for _ in range(concurrency)]

        def loop(worker: int) -> None:
            for i in range(iterations):
                query = queries[(worker + i) % len(queries)]
                request = LoadRequest(at_s=0.0, query=query,
                                      **request_kwargs)
                t0 = self._clock()
                future, attempts, shed_reason = \
                    self._submit_with_retry(request)
                if future is None:
                    per_worker[worker].append(RequestOutcome(
                        request, "shed", error=shed_reason,
                        attempts=attempts))
                    continue
                per_worker[worker].append(
                    self._gather(request, future, started_s=t0,
                                 attempts=attempts))

        started = self._clock()
        threads = [threading.Thread(target=loop, args=(n,), daemon=True)
                   for n in range(concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        finished = self._clock()
        flattened = [outcome for worker in per_worker for outcome in worker]
        return LoadReport(outcomes=tuple(flattened),
                          duration_s=finished - started, mode="closed")

    # ------------------------------------------------------------------
    def _gather(self, request: LoadRequest, future,
                started_s: float | None = None,
                attempts: int = 1) -> RequestOutcome:
        try:
            future.result()
        except SearchTimeout as exc:
            return RequestOutcome(request, "timeout", error=str(exc),
                                  attempts=attempts)
        except Overloaded as exc:
            # an async shed (e.g. an HTTP client surfacing a 429 through
            # its future) is still a shed, not a generic error
            return RequestOutcome(request, "shed", error=exc.reason,
                                  attempts=attempts)
        except GKSError as exc:
            return RequestOutcome(request, "error", error=str(exc),
                                  attempts=attempts)
        latency = (self._clock() - started_s) if started_s is not None \
            else 0.0
        return RequestOutcome(request, "ok", latency_s=latency,
                              attempts=attempts)
