"""Tests for the observability subsystem (``repro.obs``).

Covers span nesting and ordering (including under budget-degraded
searches), deterministic FakeClock-driven durations, the no-op tracer's
overhead guarantees, metrics registry semantics with a Prometheus
exposition golden test, QueryStats population, the slow-query ring
buffer, and engine cache accounting.
"""

from __future__ import annotations

import time

import pytest

from repro.core.budget import SearchBudget
from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.core.search import search
from repro.core.topk import search_top_k
from repro.datasets.registry import load_dataset
from repro.index.builder import build_index
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.stats import QueryStats, SlowQueryLog
from repro.obs.trace import (NOOP_TRACER, NullTracer, Tracer,
                             render_span_tree)
from repro.testing.faults import FakeClock

pytestmark = pytest.mark.obs


@pytest.fixture
def engine():
    return GKSEngine(load_dataset("figure2a"),
                     metrics=MetricsRegistry())


@pytest.fixture
def index():
    return build_index(load_dataset("figure2a"))


# ----------------------------------------------------------------------
# Tracer and spans
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second") as span:
                span.add("units", 3)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["first",
                                                           "second"]
        assert root.children[1].counters == {"units": 3}

    def test_fake_clock_durations_are_deterministic(self):
        clock = FakeClock(auto_advance=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        a = tracer.roots[0]
        b = a.children[0]
        # clock ticks: a-enter=0, b-enter=1, b-exit=2, a-exit=3
        assert b.duration_s == 1.0
        assert a.duration_s == 3.0

    def test_search_spans_nest_under_root(self, index):
        tracer = Tracer()
        search(index, Query.of(["karen", "mike"], s=2), tracer=tracer)
        root = tracer.roots[0]
        assert root.name == "search"
        assert [child.name for child in root.children] == \
            ["merge", "lcp", "lce", "rank"]
        assert root.find("merge").counters["sl_entries"] > 0

    def test_stage_durations_sum_to_at_most_total(self, index):
        tracer = Tracer()
        search(index, Query.of(["karen", "mike"]), tracer=tracer)
        root = tracer.roots[0]
        child_sum = sum(child.duration_s for child in root.children)
        assert 0 < child_sum <= root.duration_s

    def test_degraded_search_still_emits_ordered_spans(self, index):
        # an always-expired deadline trips the very first checkpoint
        tracer = Tracer()
        budget = SearchBudget(deadline_s=0.5,
                              clock=FakeClock(auto_advance=1.0))
        response = search(index, Query.of(["karen", "mike"]),
                          budget=budget, tracer=tracer)
        assert response.degraded
        root = tracer.roots[0]
        assert [child.name for child in root.children] == \
            ["merge", "lcp", "lce", "rank"]
        assert root.attributes["degraded"] is True
        assert root.attributes["trip_stage"] == "merge"
        assert root.attributes["trip_reason"] == "deadline"

    def test_render_span_tree(self):
        tracer = Tracer(clock=FakeClock(auto_advance=0.001))
        with tracer.span("search", s=1):
            with tracer.span("merge") as span:
                span.add("sl_entries", 7)
        text = render_span_tree(tracer.roots[0])
        lines = text.splitlines()
        assert lines[0].startswith("search")
        assert "s=1" in lines[0]
        assert lines[1].startswith("`- merge")
        assert "sl_entries=7" in lines[1]
        assert "ms" in lines[1]

    def test_topk_span_counts_skipped_tail(self, index):
        tracer = Tracer()
        search_top_k(index, Query.of(["karen"]), k=1, tracer=tracer)
        rank = tracer.roots[0].find("rank")
        assert rank.counters["ranked"] >= 1
        assert rank.counters["skipped"] >= 0


class TestNoopTracer:
    def test_null_span_is_a_singleton(self):
        assert NOOP_TRACER.span("a") is NOOP_TRACER.span("b")
        assert not NOOP_TRACER.enabled
        assert NOOP_TRACER.roots == ()

    def test_null_span_operations_are_inert(self):
        with NOOP_TRACER.span("x") as span:
            span.set(key="value").add("counter", 5)
        assert span.duration_s == 0.0
        assert NOOP_TRACER.current is None

    def test_noop_overhead_guard(self):
        """The disabled path must cost ~nothing per span."""
        iterations = 20_000
        started = time.perf_counter()
        for _ in range(iterations):
            with NOOP_TRACER.span("stage") as span:
                span.add("units", 1)
        per_span = (time.perf_counter() - started) / iterations
        assert per_span < 5e-5  # 50 µs: orders of magnitude of slack

    def test_untraced_search_records_no_spans(self, index):
        tracer = NullTracer()
        response = search(index, Query.of(["karen"]), tracer=tracer)
        assert tracer.roots == ()
        assert response.stats.total_seconds >= 0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc()
        registry.counter("requests_total").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("latency", buckets=(1.0, 2.0)).observe(1.5)
        assert registry.counter("requests_total").value() == 3
        assert registry.gauge("depth").value() == 7
        assert registry.histogram("latency").count() == 1
        assert registry.histogram("latency").sum() == 1.5

    def test_labelled_counters_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("trips_total")
        counter.inc(labels={"stage": "merge"})
        counter.inc(2, labels={"stage": "rank"})
        assert counter.value(labels={"stage": "merge"}) == 1
        assert counter.value(labels={"stage": "rank"}) == 2
        assert counter.total() == 3

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a_total", help="help text").inc()
        registry.histogram("b_seconds", buckets=(0.1,)).observe(0.05)
        parsed = json.loads(registry.to_json())
        assert parsed["a_total"]["values"][""] == 1
        assert parsed["b_seconds"]["values"][""]["count"] == 1

    def test_prometheus_exposition_golden(self):
        registry = MetricsRegistry()
        registry.counter("gks_searches_total",
                         help="Queries served.").inc(3)
        registry.counter("gks_budget_trips_total").inc(
            labels={"stage": "merge", "reason": "deadline"})
        registry.gauge("gks_index_documents").set(2)
        histogram = registry.histogram("gks_search_seconds",
                                       buckets=(0.1, 0.5))
        histogram.observe(0.05)
        histogram.observe(0.25)
        histogram.observe(9.0)
        expected = "\n".join([
            "# TYPE gks_budget_trips_total counter",
            'gks_budget_trips_total{reason="deadline",stage="merge"} 1',
            "# TYPE gks_index_documents gauge",
            "gks_index_documents 2",
            "# TYPE gks_search_seconds histogram",
            'gks_search_seconds_bucket{le="0.1"} 1',
            'gks_search_seconds_bucket{le="0.5"} 2',
            'gks_search_seconds_bucket{le="+Inf"} 3',
            "gks_search_seconds_sum 9.3",
            "gks_search_seconds_count 3",
            "# HELP gks_searches_total Queries served.",
            "# TYPE gks_searches_total counter",
            "gks_searches_total 3",
        ]) + "\n"
        assert registry.render_prometheus() == expected


# ----------------------------------------------------------------------
# QueryStats on every response
# ----------------------------------------------------------------------
class TestQueryStats:
    def test_search_populates_stats(self, index):
        response = search(index, Query.of(["karen", "mike"], s=2))
        stats = response.stats
        assert stats.postings_scanned == \
            response.profile.merged_list_size
        assert stats.nodes_emitted == len(response)
        assert stats.total_seconds > 0
        assert 0 < stats.stage_sum() <= stats.total_seconds * 1.001
        assert not stats.cache_hit and not stats.degraded

    def test_topk_populates_stats(self, index):
        response = search_top_k(index, Query.of(["karen"]), k=2)
        assert response.stats.nodes_emitted == len(response)
        assert response.stats.total_seconds > 0

    def test_degraded_stats_name_the_trip(self, index):
        budget = SearchBudget(deadline_s=0.5,
                              clock=FakeClock(auto_advance=1.0))
        stats = search(index, Query.of(["karen"]), budget=budget).stats
        assert stats.degraded
        assert stats.budget_trips == 1
        assert stats.trip_stage == "merge"
        assert stats.trip_reason == "deadline"

    def test_cache_hit_flag(self, engine):
        first = engine.search("karen mike", s=1)
        second = engine.search("karen mike", s=1)
        assert not first.stats.cache_hit
        assert second.stats.cache_hit
        # the cached object itself must stay pristine for later hits
        assert engine.search("karen mike", s=1).stats.cache_hit

    def test_stats_to_dict(self):
        stats = QueryStats(total_seconds=1.0, merge_seconds=0.5,
                           postings_scanned=4)
        as_dict = stats.to_dict()
        assert as_dict["stages"]["merge"] == 0.5
        assert as_dict["postings_scanned"] == 4


# ----------------------------------------------------------------------
# Engine accounting: cache, metrics, traces, slow log
# ----------------------------------------------------------------------
class TestEngineObservability:
    def test_cache_info_counts_hits_misses(self, engine):
        engine.search("karen", s=1)
        engine.search("karen", s=1)
        engine.search("mike", s=1)
        info = engine.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2
        assert info["size"] == 2

    def test_eviction_accounting(self):
        engine = GKSEngine(load_dataset("figure2a"), cache_size=2,
                           metrics=MetricsRegistry())
        for text in ("karen", "mike", "zoe"):
            engine.search(text, s=1)
        info = engine.cache_info()
        assert info["evictions"] == 1
        assert info["size"] == 2
        assert info["capacity"] == 2
        registry = engine.metrics_registry
        assert registry.counter("gks_cache_evictions_total").value() == 1
        assert registry.counter("gks_cache_misses_total").value() == 3

    def test_lru_eviction_drops_least_recent(self):
        engine = GKSEngine(load_dataset("figure2a"), cache_size=2,
                           metrics=MetricsRegistry())
        engine.search("karen", s=1)
        engine.search("mike", s=1)
        engine.search("karen", s=1)   # refresh karen: mike is now LRU
        engine.search("zoe", s=1)     # evicts mike
        engine.search("karen", s=1)
        info = engine.cache_info()
        assert info["hits"] == 2
        assert info["evictions"] == 1

    def test_search_metrics_recorded(self, engine):
        engine.search("karen mike", s=1)
        registry = engine.metrics_registry
        assert registry.counter("gks_searches_total").value() == 1
        assert registry.histogram("gks_search_seconds").count() == 1
        assert registry.histogram("gks_search_stage_seconds").count(
            labels={"stage": "merge"}) == 1
        assert registry.counter(
            "gks_search_postings_scanned_total").value() > 0

    def test_degraded_search_counted(self, engine):
        budget = SearchBudget(deadline_s=0.5,
                              clock=FakeClock(auto_advance=1.0))
        engine.search("karen", budget=budget)
        assert engine.metrics_registry.counter(
            "gks_search_degraded_total").value() == 1

    def test_budget_trip_metric_in_global_registry(self, index):
        counter = global_registry().counter("gks_budget_trips_total")
        before = counter.value(labels={"stage": "merge",
                                       "reason": "deadline"})
        budget = SearchBudget(deadline_s=0.5,
                              clock=FakeClock(auto_advance=1.0))
        search(index, Query.of(["karen"]), budget=budget)
        after = counter.value(labels={"stage": "merge",
                                      "reason": "deadline"})
        assert after == before + 1

    def test_recent_traces_ring(self, engine):
        for _ in range(2):
            engine.search("karen", s=1, use_cache=False,
                          tracer=Tracer())
        engine.search("mike", s=1, use_cache=False)  # untraced
        traces = engine.recent_traces()
        assert len(traces) == 2
        assert all(span.name == "search" for span in traces)

    def test_engine_metrics_snapshot(self, engine):
        engine.search("karen", s=1)
        snapshot = engine.metrics()
        assert "gks_searches_total" in snapshot
        assert snapshot["gks_searches_total"]["values"][""] == 1


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_s=0.5, capacity=4)
        assert log.observe("fast", 1, QueryStats(total_seconds=0.1)) \
            is None
        entry = log.observe("slow", 1, QueryStats(total_seconds=0.9))
        assert entry is not None
        assert len(log) == 1
        assert log.total_observed == 2
        assert log.entries()[0].query_text == "slow"

    def test_ring_buffer_caps_memory(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=3)
        for position in range(10):
            log.observe(f"q{position}", 1,
                        QueryStats(total_seconds=1.0))
        assert len(log) == 3
        assert [entry.query_text for entry in log.entries()] == \
            ["q7", "q8", "q9"]

    def test_engine_files_slow_queries(self):
        engine = GKSEngine(load_dataset("figure2a"),
                           metrics=MetricsRegistry(),
                           slow_query_threshold_s=0.5)
        # a fake tracer clock makes the measured pipeline time huge
        engine.search("karen", s=1, use_cache=False,
                      tracer=Tracer(clock=FakeClock(auto_advance=0.2)))
        slow = engine.slow_queries()
        assert len(slow) == 1
        assert slow[0].stats.total_seconds > 0.5

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
